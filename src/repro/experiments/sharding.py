"""Shard-router overhead measurement (serving-scale experiment).

The :class:`~repro.serving.shards.ShardRouter` buys horizontal capacity -
per-range label shards, lazy mmap loading, per-source-shard fan-out - at
the cost of extra routing work per batch (shard lookups, per-shard
gathers, result re-assembly).  This workload quantifies that cost: it
shards a built index at several shard counts, replays the same query
batch through the monolithic engine and through each router, verifies the
answers are bit-identical, and reports the per-shard-count latency plus
routing statistics.  The rows feed ``BENCH_query.json`` (one row per
shard count) so router regressions are visible across PRs.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.index import HC2LIndex
from repro.serving.shards import RouterStats, ShardRouter

QueryPair = Tuple[int, int]


def router_overhead_rows(
    index: HC2LIndex,
    pairs: Sequence[QueryPair],
    workdir: Union[str, Path],
    shard_counts: Sequence[int] = (1, 2, 4),
    repetitions: int = 1,
) -> List[Dict[str, object]]:
    """Measure the shard router against the monolithic engine.

    Shards ``index`` under ``workdir`` at each count in ``shard_counts``
    and times the same ``pairs`` batch through a preloaded
    :class:`ShardRouter` (shard load time excluded - a serving worker
    pays it once, not per batch).  Raises ``AssertionError`` if any
    router answer diverges from the engine.  Returns one row per shard
    count with the batch latency, the overhead ratio relative to the
    monolithic batch path, and the fan-out statistics of one
    steady-state batch.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    # save_sharded partitions the in-memory index; the path only names the
    # <path>.shards/ layout directory, so no monolithic archive is written
    path = workdir / "router-overhead.npz"

    pairs = list(pairs)
    index.distances(pairs[:1])  # warm the engine outside the timed region
    baseline = index.distances(pairs)
    engine_seconds = min(_timed(index, pairs) for _ in range(repetitions))

    rows: List[Dict[str, object]] = []
    for count in shard_counts:
        index.save_sharded(path, num_shards=count)
        router = ShardRouter(path, preload=True)
        answers = router.distances(pairs)
        if answers.tolist() != baseline.tolist():
            raise AssertionError(
                f"router answers diverged from the engine at {count} shards"
            )
        router_seconds = min(_timed(router, pairs) for _ in range(repetitions))
        # report the routing stats of exactly one steady-state batch, not
        # the accumulation over verification + every timed repetition -
        # otherwise the counters scale with `repetitions` and read as
        # routing regressions across PRs
        router.stats = RouterStats()
        router.distances(pairs)
        rows.append(
            {
                "oracle": f"HC2L+router(shards={count})",
                "num_queries": len(pairs),
                "num_shards": count,
                "batch_queries_per_second": round(len(pairs) / router_seconds, 1),
                "batch_microseconds_per_query": round(
                    router_seconds / len(pairs) * 1e6, 3
                ),
                "router_overhead_ratio": round(router_seconds / engine_seconds, 3)
                if engine_seconds > 0
                else float("inf"),
                "engine_batch_microseconds_per_query": round(
                    engine_seconds / len(pairs) * 1e6, 3
                ),
                **router.stats.as_dict(),
            }
        )
    return rows


def boundary_locality_rows(
    index: HC2LIndex,
    pairs: Sequence[QueryPair],
    workdir: Union[str, Path],
    num_shards: int = 4,
    modes: Sequence[str] = ("even", "hierarchy"),
) -> List[Dict[str, object]]:
    """Compare shard-boundary layouts on the cross-shard pair fraction.

    Shards ``index`` once per mode under ``workdir`` and replays the same
    ``pairs`` batch through a preloaded router, verifying the answers are
    bit-identical to the monolithic engine (the layouts only move label
    bytes around).  Returns one row per mode carrying the router stats -
    most importantly ``cross_shard_fraction``, the locality metric the
    hierarchy-aligned boundaries exist to push down on neighbourhood-style
    traffic (:func:`repro.experiments.workloads.neighborhood_pairs`).
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    pairs = list(pairs)
    baseline = index.distances(pairs)
    rows: List[Dict[str, object]] = []
    for mode in modes:
        path = workdir / f"boundaries-{mode}.npz"
        index.save_sharded(path, num_shards=num_shards, boundaries=mode)
        router = ShardRouter(path, preload=True)
        answers = router.distances(pairs)
        if answers.tolist() != baseline.tolist():
            raise AssertionError(
                f"router answers diverged from the engine under {mode!r} boundaries"
            )
        rows.append(
            {
                "oracle": f"HC2L+router(shards={num_shards},boundaries={mode})",
                "num_queries": len(pairs),
                "num_shards": num_shards,
                "boundaries": mode,
                **router.stats.as_dict(),
            }
        )
    return rows


def _timed(oracle, pairs: Sequence[QueryPair]) -> float:
    start = time.perf_counter()
    oracle.distances(pairs)
    return time.perf_counter() - start
