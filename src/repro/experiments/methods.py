"""Uniform wrappers around HC2L and the baselines for the experiment harness.

A :class:`MethodSpec` bundles a display name with a builder callable.
Every builder returns a :class:`repro.core.oracle.DistanceOracle`, so the
harness times scalar and batched queries through the same protocol calls
for every method - adding another method is a one-liner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.baselines.ch import ContractionHierarchy
from repro.baselines.dijkstra import BidirectionalDijkstra, DijkstraOracle
from repro.baselines.h2h import H2HIndex
from repro.baselines.hub_labelling import HubLabelling
from repro.baselines.phl import PrunedHighwayLabelling
from repro.baselines.pll import PrunedLandmarkLabelling
from repro.core.index import HC2LIndex
from repro.core.oracle import DistanceOracle
from repro.graph.graph import Graph

IndexBuilder = Callable[[Graph], DistanceOracle]


@dataclass(frozen=True)
class MethodSpec:
    """A named distance-query method plugged into the harness."""

    name: str
    builder: IndexBuilder
    #: whether the method has a meaningful LCA auxiliary structure (Table 3)
    has_lca_storage: bool = False


def _build_hc2l(graph: Graph) -> HC2LIndex:
    return HC2LIndex.build(graph)


def _build_hc2l_parallel(graph: Graph) -> HC2LIndex:
    return HC2LIndex.build(graph, num_workers=4)


def _build_hc2l_no_tail_pruning(graph: Graph) -> HC2LIndex:
    return HC2LIndex.build(graph, tail_pruning=False)


def _build_h2h(graph: Graph) -> H2HIndex:
    return H2HIndex.build(graph)


def _build_phl(graph: Graph) -> PrunedHighwayLabelling:
    return PrunedHighwayLabelling.build(graph)


def _build_hl(graph: Graph) -> HubLabelling:
    return HubLabelling.build(graph)


def _build_pll(graph: Graph) -> PrunedLandmarkLabelling:
    return PrunedLandmarkLabelling.build(graph)


def _build_bidirectional(graph: Graph) -> BidirectionalDijkstra:
    return BidirectionalDijkstra.build(graph)


def _build_ch(graph: Graph) -> ContractionHierarchy:
    return ContractionHierarchy.build(graph)


def _build_dijkstra(graph: Graph) -> DijkstraOracle:
    return DijkstraOracle.build(graph)


#: Methods evaluated in the paper's tables, keyed by their table column name.
METHOD_BUILDERS: Dict[str, MethodSpec] = {
    "HC2L": MethodSpec("HC2L", _build_hc2l, has_lca_storage=True),
    "HC2L_p": MethodSpec("HC2L_p", _build_hc2l_parallel, has_lca_storage=True),
    "HC2L_nt": MethodSpec("HC2L_nt", _build_hc2l_no_tail_pruning, has_lca_storage=True),
    "H2H": MethodSpec("H2H", _build_h2h, has_lca_storage=True),
    "PHL": MethodSpec("PHL", _build_phl),
    "HL": MethodSpec("HL", _build_hl),
    "PLL": MethodSpec("PLL", _build_pll),
    "CH": MethodSpec("CH", _build_ch),
    "BiDijkstra": MethodSpec("BiDijkstra", _build_bidirectional),
    "Dijkstra": MethodSpec("Dijkstra", _build_dijkstra),
}

#: The methods appearing in Tables 2 and 4 of the paper.
TABLE_METHODS: List[str] = ["HC2L", "H2H", "PHL", "HL"]


def available_methods(names: Optional[List[str]] = None) -> List[MethodSpec]:
    """Resolve a list of method names (defaults to the paper's table methods)."""
    selected = names or TABLE_METHODS
    unknown = [name for name in selected if name not in METHOD_BUILDERS]
    if unknown:
        raise KeyError(f"unknown methods {unknown}; available: {sorted(METHOD_BUILDERS)}")
    return [METHOD_BUILDERS[name] for name in selected]
