"""Plain-text rendering of the reproduced tables and figures.

The renderers print the same rows/series the paper reports, with sizes
shown in human-readable units and query times in microseconds, so the
output of ``examples/reproduce_tables.py`` can be compared line by line
against the published tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.experiments.figures import Figure6Result, Figure7Result


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (the paper mixes MB and GB)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} TB"


def format_value(key: str, value: object) -> str:
    """Format one table cell based on its column name."""
    if isinstance(value, float):
        if "bytes" in key:
            return format_bytes(value)
        if "seconds" in key or key.endswith("_s") or "_s_" in key:
            return f"{value:.3f}"
        if "us" in key:
            return f"{value:.3f}"
        return f"{value:.3f}"
    if isinstance(value, int) and "bytes" in key:
        return format_bytes(value)
    return str(value)


def render_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    formatted = [[format_value(col, row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), max(len(line[i]) for line in formatted)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in formatted:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines) + "\n"


def render_figure6(result: Figure6Result) -> str:
    """Render the Figure 6 series as one text block per dataset."""
    blocks: List[str] = []
    for dataset in result.datasets:
        rows = []
        for method in result.methods:
            series = result.series[dataset][method]
            row: Dict[str, object] = {"method": method}
            for i, value in enumerate(series, start=1):
                row[f"Q{i}_us"] = round(value, 3)
            rows.append(row)
        blocks.append(render_table(rows, title=f"Figure 6 - {dataset} (query time per query set)"))
    return "\n".join(blocks)


def render_figure7(result: Figure7Result) -> str:
    """Render the Figure 7 beta sweep as one text block."""
    rows = []
    for dataset in result.datasets:
        for i, beta in enumerate(result.betas):
            rows.append(
                {
                    "dataset": dataset,
                    "beta": beta,
                    "query_us": round(result.query_time_us[dataset][i], 3),
                    "avg_cut": round(result.avg_cut_size[dataset][i], 2),
                    "max_cut": int(result.max_cut_size[dataset][i]),
                }
            )
    return render_table(rows, title="Figure 7 - balance threshold sweep")


def render_all(tables: Dict[str, Iterable[Mapping[str, object]]]) -> str:
    """Render a dict of named tables (as produced by ``tables.all_tables``)."""
    blocks = []
    for name, rows in tables.items():
        blocks.append(render_table(list(rows), title=name.upper()))
    return "\n".join(blocks)
