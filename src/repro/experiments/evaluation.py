"""End-to-end evaluation runs shared by the table and figure generators.

Building every index is by far the most expensive part of regenerating the
paper's evaluation, so :func:`run_evaluation` builds each (dataset, method)
index exactly once and the table/figure modules slice the results they
need out of the returned :class:`EvaluationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.datasets import bench_dataset_names, load_dataset
from repro.experiments.harness import CellResult, run_cell
from repro.experiments.methods import MethodSpec, available_methods
from repro.experiments.workloads import random_pairs
from repro.graph.graph import Graph

CellKey = Tuple[str, str]  # (dataset, method)


@dataclass
class EvaluationResult:
    """All measurements of one evaluation run."""

    weighting: str
    datasets: List[str]
    methods: List[str]
    cells: Dict[CellKey, CellResult] = field(default_factory=dict)
    #: kept only when requested (figure 6 re-queries the built indexes)
    indexes: Dict[CellKey, object] = field(default_factory=dict)
    graphs: Dict[str, Graph] = field(default_factory=dict)

    def cell(self, dataset: str, method: str) -> CellResult:
        """The measurements of one (dataset, method) cell."""
        return self.cells[(dataset, method)]

    def rows(self) -> List[Dict[str, object]]:
        """All cells flattened to dicts (one per dataset x method)."""
        return [cell.as_dict() for cell in self.cells.values()]


def run_evaluation(
    datasets: Optional[List[str]] = None,
    methods: Optional[List[str]] = None,
    weighting: str = "distance",
    num_queries: int = 2000,
    seed: int = 17,
    keep_indexes: bool = False,
) -> EvaluationResult:
    """Build every requested method on every requested dataset and measure it.

    Parameters
    ----------
    datasets:
        Dataset names (default: the benchmark subset from the environment).
    methods:
        Method names from :data:`repro.experiments.methods.METHOD_BUILDERS`
        (default: the paper's table methods HC2L, H2H, PHL, HL).
    weighting:
        ``"distance"`` (Table 2) or ``"travel_time"`` (Table 4).
    num_queries:
        Number of random query pairs measured per dataset.
    keep_indexes:
        Retain the built indexes on the result (needed by Figure 6).
    """
    dataset_names = datasets or bench_dataset_names()
    specs: List[MethodSpec] = available_methods(methods)
    result = EvaluationResult(
        weighting=weighting,
        datasets=list(dataset_names),
        methods=[spec.name for spec in specs],
    )
    for dataset in dataset_names:
        network = load_dataset(dataset)
        graph = network.graph(weighting)
        result.graphs[dataset] = graph
        pairs = random_pairs(graph, num_queries, seed=seed)
        for spec in specs:
            index = spec.builder(graph)
            cell = run_cell(spec, graph, pairs, dataset_name=dataset, prebuilt_index=index)
            result.cells[(dataset, spec.name)] = cell
            if keep_indexes:
                result.indexes[(dataset, spec.name)] = index
    return result
