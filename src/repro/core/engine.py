"""Batch query engine over flat HC2L label storage.

:class:`QueryEngine` is the query-side counterpart of
:class:`~repro.core.flat.FlatLabelling`: it resolves degree-one
contraction, LCA depth and the min-plus label scan either one pair at a
time (:meth:`distance`, over Python lists with no per-call numpy
overhead) or for whole batches at once (:meth:`distances`,
:meth:`one_to_many`), where the contraction bookkeeping, the bitstring
LCA of Section 4.3 and the min-plus reduction are all vectorised over the
contiguous distance buffer.

The graph-level half of the batch path - range validation, contraction
resolution and the vectorised LCA - lives in :class:`BatchResolver` so
it is shared with oracles that gather labels from a *different* store,
in particular the :class:`~repro.serving.shards.ShardRouter` fanning one
batch out over several label shards.

Both paths perform exactly the same float64 additions and minima as the
original per-pair implementation, so batch results are bit-identical to
the scalar ones - the tests assert ``==``, not ``approx``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.flat import FlatLabelling
from repro.core.oracle import as_pair_array, pairs_from_source
from repro.core.oracle import as_vertex_ids as _as_vertex_ids
from repro.core.tree_resolve import TreeDistanceResolver
from repro.graph.contraction import ContractedGraph
from repro.hierarchy.tree import BalancedTreeHierarchy
from repro.utils.validation import check_vertex

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.index import HC2LIndex

INF = float("inf")

#: Deeper hierarchies than this cannot pack their path bitstrings into a
#: non-negative int64, so the vectorised LCA falls back to scalar code.
_MAX_VECTOR_DEPTH = 62


class BatchResolver:
    """Vectorised contraction + LCA bookkeeping for a pair batch.

    Owns the graph-level state a batched HC2L query needs *before* any
    label array is touched: per-vertex attachment roots and root
    distances, the root's core id, and the bitstring LCA of Section 4.3.
    :class:`QueryEngine` delegates to it for the monolithic labelling;
    :class:`~repro.serving.shards.ShardRouter` reuses it unchanged over a
    partitioned label store.
    """

    def __init__(self, contraction: ContractedGraph, hierarchy: BalancedTreeHierarchy) -> None:
        self.contraction = contraction
        self.hierarchy = hierarchy
        self._root = np.asarray(contraction.root, dtype=np.int64)
        self._dist_to_root = np.asarray(contraction.dist_to_root, dtype=np.float64)
        self._tree_resolver: Optional[TreeDistanceResolver] = None
        # guards the lazy Euler-tour build: the resolver is shared by the
        # ShardRouter, whose distances() is documented safe for concurrent
        # callers, and the build walks every contracted vertex
        self._tree_resolver_lock = threading.Lock()
        original_to_core = np.asarray(contraction.original_to_core, dtype=np.int64)
        #: core id of each original vertex's attachment root
        self._root_core = original_to_core[self._root]
        self._vertex_depth = np.asarray(hierarchy.vertex_depth, dtype=np.int64)
        max_depth = int(self._vertex_depth.max()) if len(self._vertex_depth) else 0
        self._vector_lca = max_depth <= _MAX_VECTOR_DEPTH
        if self._vector_lca:
            self._vertex_bits = np.asarray(hierarchy.vertex_bits, dtype=np.int64)
        else:  # pragma: no cover - needs a >62-level hierarchy
            self._vertex_bits = None

    def __getstate__(self) -> dict:
        """Drop the (unpicklable) lock; legacy pickle support only."""
        state = self.__dict__.copy()
        del state["_tree_resolver_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._tree_resolver_lock = threading.Lock()

    def validate_vertices(self, s: np.ndarray, t: np.ndarray) -> None:
        """Range-check both endpoint arrays (original vertex ids)."""
        n = self.contraction.num_original
        if s.size and (int(min(s.min(), t.min())) < 0 or int(max(s.max(), t.max())) >= n):
            bad = next(
                int(v) for v in np.concatenate([s, t]) if v < 0 or v >= n
            )
            raise ValueError(f"vertex {bad} is out of range for a graph with {n} vertices")

    def resolve(
        self, s: np.ndarray, t: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Resolve the contraction bookkeeping of a validated pair batch.

        Returns ``(out, core_mask, cs, ct, offsets)``: ``out`` already
        holds the answers of pairs resolved inside the attachment trees
        (identical endpoints, shared root); for the rest - flagged by
        ``core_mask`` - the caller computes the core distances between
        ``cs`` and ``ct`` and adds ``offsets``.
        """
        out = np.zeros(len(s), dtype=np.float64)
        same = s == t
        root_s = self._root[s]
        root_t = self._root[t]
        same_root = (root_s == root_t) & ~same
        if same_root.any():
            # both endpoints hang off the same attachment tree: answered by
            # the Euler-tour RMQ resolver (vectorised; bit-identical to the
            # scalar tree_lca_distance walk)
            out[same_root] = self.tree_resolver.distances(s[same_root], t[same_root])

        core_mask = ~same & ~same_root
        cs = self._root_core[s[core_mask]]
        ct = self._root_core[t[core_mask]]
        offsets = self._dist_to_root[s[core_mask]] + self._dist_to_root[t[core_mask]]
        return out, core_mask, cs, ct, offsets

    def attach_tree_resolver(self, resolver: TreeDistanceResolver) -> None:
        """Install a pre-built (e.g. sidecar-loaded) Euler-tour resolver.

        Serving processes that load the persisted tour sidecar skip the
        lazy per-process rebuild; answers are bit-identical either way.
        """
        with self._tree_resolver_lock:
            self._tree_resolver = resolver

    @property
    def tree_resolver(self) -> TreeDistanceResolver:
        """The Euler-tour LCA structure over the attachment trees.

        Built lazily on the first batch that actually contains a same-root
        pair, so engines serving core-only workloads pay nothing.
        """
        resolver = self._tree_resolver
        if resolver is None:
            with self._tree_resolver_lock:
                resolver = self._tree_resolver
                if resolver is None:  # still unbuilt: this thread builds it
                    contraction = self.contraction
                    resolver = TreeDistanceResolver(
                        parent=np.asarray(contraction.parent, dtype=np.int64),
                        depth=np.asarray(contraction.depth, dtype=np.int64),
                        root=self._root,
                        dist_to_root=self._dist_to_root,
                    )
                    self._tree_resolver = resolver
        return resolver

    def lca_depths(self, cs: np.ndarray, ct: np.ndarray) -> np.ndarray:
        """Vectorised Section 4.3 LCA depth (common bitstring prefix length)."""
        if not self._vector_lca:  # pragma: no cover - needs a >62-level hierarchy
            lca_depth = self.hierarchy.lca_depth
            return np.asarray(
                [lca_depth(int(a), int(b)) for a, b in zip(cs, ct)], dtype=np.int64
            )
        depth_u = self._vertex_depth[cs]
        depth_v = self._vertex_depth[ct]
        bits_u = self._vertex_bits[cs]
        bits_v = self._vertex_bits[ct]
        shift = depth_u - depth_v
        bits_u = np.where(shift > 0, bits_u >> np.maximum(shift, 0), bits_u)
        bits_v = np.where(shift < 0, bits_v >> np.maximum(-shift, 0), bits_v)
        common = np.minimum(depth_u, depth_v)
        diff = bits_u ^ bits_v
        # bit_length(0) == 0, so the diff == 0 case needs no special branch
        return common - _bit_length(diff)


class QueryEngine:
    """Answers exact distance queries over flat label buffers.

    Parameters
    ----------
    contraction:
        The degree-one contraction of the indexed graph (original-id to
        core-id bookkeeping plus attachment trees).
    hierarchy:
        The balanced tree hierarchy over the core graph.
    flat:
        The flat label storage for the core graph.
    """

    def __init__(
        self,
        contraction: ContractedGraph,
        hierarchy: BalancedTreeHierarchy,
        flat: FlatLabelling,
    ) -> None:
        self.contraction = contraction
        self.hierarchy = hierarchy
        self.flat = flat

        # scalar-path state: plain Python lists (fastest per-pair access).
        # Materialised lazily on the first scalar query so a batch-only
        # serving process holds the labels exactly once (the flat buffers).
        self._values_list: Optional[List[float]] = None
        self._level_indptr_list: Optional[List[int]] = None
        self._vertex_indptr_list: Optional[List[int]] = None

        # batch-path state: numpy views/arrays + the shared graph-level
        # resolver (contraction bookkeeping, vectorised LCA)
        self._values = flat.values
        self._level_indptr = flat.level_indptr
        self._vertex_indptr = flat.vertex_indptr
        self.resolver = BatchResolver(contraction, hierarchy)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_index(cls, index: "HC2LIndex") -> "QueryEngine":
        """Build an engine for a constructed :class:`HC2LIndex`."""
        return cls(index.contraction, index.hierarchy, index.flat_labelling())

    @property
    def num_vertices(self) -> int:
        """Number of (original) vertices the engine answers queries for."""
        return self.contraction.num_original

    # ------------------------------------------------------------------ #
    # scalar path
    # ------------------------------------------------------------------ #
    def distance(self, s: int, t: int) -> float:
        """Exact distance between ``s`` and ``t`` (original ids)."""
        n = self.contraction.num_original
        check_vertex(s, n, "s")
        check_vertex(t, n, "t")
        resolved, core_s, core_t, offset = self.contraction.resolve_query(s, t)
        if resolved is not None:
            return resolved
        return offset + self._core_distance(core_s, core_t)

    def _ensure_scalar_state(self) -> None:
        """Build the Python-list mirror the per-pair path iterates over.

        ``_values_list`` is assigned *last*: concurrent scalar queries gate
        on it, so the indptr lists must already be visible by then.
        """
        if self._values_list is None:
            self._level_indptr_list = self.flat.level_indptr.tolist()
            self._vertex_indptr_list = self.flat.vertex_indptr.tolist()
            self._values_list = self.flat.values.tolist()

    def _core_distance(self, s: int, t: int) -> float:
        """Min-plus scan over the flat buffer for two core vertices."""
        if s == t:
            return 0.0
        if self._values_list is None:
            self._ensure_scalar_state()
        depth = self.hierarchy.lca_depth(s, t)
        level_indptr = self._level_indptr_list
        k_s = self._vertex_indptr_list[s] + depth
        k_t = self._vertex_indptr_list[t] + depth
        start_s = level_indptr[k_s]
        start_t = level_indptr[k_t]
        length = min(level_indptr[k_s + 1] - start_s, level_indptr[k_t + 1] - start_t)
        values = self._values_list
        best = INF
        for i in range(length):
            candidate = values[start_s + i] + values[start_t + i]
            if candidate < best:
                best = candidate
        return best

    # ------------------------------------------------------------------ #
    # batch path
    # ------------------------------------------------------------------ #
    def distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Exact distances for a batch of ``(s, t)`` pairs (vectorised).

        Returns a ``float64`` array aligned with ``pairs``; disconnected
        pairs get ``inf``.  Results are bit-identical to calling
        :meth:`distance` per pair.
        """
        pair_array = as_pair_array(pairs)
        if pair_array.size == 0:
            return np.empty(0, dtype=np.float64)
        s = np.ascontiguousarray(pair_array[:, 0])
        t = np.ascontiguousarray(pair_array[:, 1])
        self.resolver.validate_vertices(s, t)
        out, core_mask, cs, ct, offsets = self.resolver.resolve(s, t)
        if core_mask.any():
            out[core_mask] = offsets + self._core_distances(cs, ct)
        return out

    def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Distances from ``s`` to every vertex in ``targets`` (batched)."""
        if isinstance(s, np.integer):
            s = int(s)  # numpy ints are fine; floats still fail check_vertex
        check_vertex(s, self.contraction.num_original, "s")
        return self.distances(pairs_from_source(s, targets))

    def many_to_many(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        """The ``len(sources) x len(targets)`` distance matrix (batched)."""
        source_array = _as_vertex_ids(np.asarray(sources), "sources")
        target_array = _as_vertex_ids(np.asarray(targets), "targets")
        pairs = np.empty((len(source_array) * len(target_array), 2), dtype=np.int64)
        pairs[:, 0] = np.repeat(source_array, len(target_array))
        pairs[:, 1] = np.tile(target_array, len(source_array))
        return self.distances(pairs).reshape(len(source_array), len(target_array))

    # ------------------------------------------------------------------ #
    def _core_distances(self, cs: np.ndarray, ct: np.ndarray) -> np.ndarray:
        """Vectorised min-plus for arrays of core vertex pairs (cs != ct allowed equal)."""
        depth = self.resolver.lca_depths(cs, ct)

        k_s = self._vertex_indptr[cs] + depth
        k_t = self._vertex_indptr[ct] + depth
        start_s = self._level_indptr[k_s]
        start_t = self._level_indptr[k_t]
        lengths = np.minimum(
            self._level_indptr[k_s + 1] - start_s,
            self._level_indptr[k_t + 1] - start_t,
        )

        result = np.full(len(cs), INF, dtype=np.float64)
        equal = cs == ct
        result[equal] = 0.0
        lengths = np.where(equal, 0, lengths)

        total = int(lengths.sum())
        if total == 0:
            return result

        # Grouped gather: for pair p with shared prefix length L_p, generate
        # flat indices start[p] .. start[p] + L_p - 1 for both sides.
        group_starts = np.cumsum(lengths) - lengths
        within = np.arange(total, dtype=np.int64) - np.repeat(group_starts, lengths)
        idx_s = np.repeat(start_s, lengths) + within
        idx_t = np.repeat(start_t, lengths) + within
        sums = self._values[idx_s] + self._values[idx_t]

        nonempty = lengths > 0
        mins = np.minimum.reduceat(sums, group_starts[nonempty])
        result[nonempty] = mins
        return result


def _bit_length(x: np.ndarray) -> np.ndarray:
    """Element-wise ``int.bit_length`` for non-negative int64 arrays."""
    x = x.astype(np.uint64)
    # smear the highest set bit downwards, then count the set bits with a
    # SWAR popcount (np.bitwise_count needs numpy >= 2.0, which the repo
    # does not require)
    for shift in (1, 2, 4, 8, 16, 32):
        x = x | (x >> np.uint64(shift))
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x = x - ((x >> np.uint64(1)) & m1)
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    return ((x * h01) >> np.uint64(56)).astype(np.int64)
