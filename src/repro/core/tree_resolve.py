"""Batched LCA distances inside the degree-one attachment trees.

The contraction resolve step of a pair batch (``BatchResolver.resolve``)
has to answer pairs whose endpoints hang off the *same* attachment tree:
``d(u, v) = d(u, root) + d(v, root) - 2 * d(lca(u, v), root)``
(Section 4.2.2).  The original implementation walked each such pair to its
lowest common ancestor one at a time
(:meth:`~repro.graph.contraction.ContractedGraph.tree_lca_distance`),
which turns tree-heavy batches - caterpillar road appendices, whole tree
components - into a scalar Python loop.

:class:`TreeDistanceResolver` replaces that loop with the classic Euler
tour + range-minimum reduction: at build time it derives, from the
contraction's parent/depth arrays,

* one Euler tour over every non-trivial attachment tree (a forest tour;
  ``2T - R`` entries for ``T`` member vertices in ``R`` trees),
* the first-occurrence index of each member vertex, and
* a sparse table of argmin positions over the tour's depth sequence,

after which a whole batch of same-root pairs is answered with two sparse
table gathers (the RMQ) and three ``dist_to_root`` gathers.  The final
arithmetic performs exactly the float64 operations of the scalar walk -
``dist_to_root[u] + dist_to_root[v] - 2.0 * dist_to_root[lca]`` - so the
results are bit-identical (the regression suite asserts ``==``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["TreeDistanceResolver"]


class TreeDistanceResolver:
    """Vectorised same-attachment-tree distances via Euler-tour RMQ.

    Parameters
    ----------
    parent / depth / root / dist_to_root:
        The per-original-vertex bookkeeping arrays of a
        :class:`~repro.graph.contraction.ContractedGraph` (core vertices
        are their own parent/root at depth 0).

    Only vertices belonging to a non-trivial attachment tree (a contracted
    vertex, or a core root with at least one contracted child) become tour
    members; :meth:`distances` may only be called with pairs that share an
    attachment root, which guarantees both endpoints are members.
    """

    __slots__ = (
        "_dist_to_root",
        "_members",
        "_local",
        "_euler",
        "_euler_depth",
        "_first",
        "_table",
    )

    def __init__(
        self,
        parent: np.ndarray,
        depth: np.ndarray,
        root: np.ndarray,
        dist_to_root: np.ndarray,
    ) -> None:
        parent = np.asarray(parent, dtype=np.int64)
        depth = np.asarray(depth, dtype=np.int64)
        root = np.asarray(root, dtype=np.int64)
        self._dist_to_root = np.asarray(dist_to_root, dtype=np.float64)
        n = len(parent)

        contracted = np.nonzero(root != np.arange(n, dtype=np.int64))[0]
        members = np.unique(np.concatenate([contracted, root[contracted]]))
        self._members = members
        num_members = len(members)
        local = np.full(n, -1, dtype=np.int64)
        local[members] = np.arange(num_members, dtype=np.int64)
        self._local = local

        if num_members == 0:
            self._euler = np.empty(0, dtype=np.int64)
            self._euler_depth = np.empty(0, dtype=np.int64)
            self._first = np.empty(0, dtype=np.int64)
            self._table = np.empty((1, 0), dtype=np.int64)
            return

        # children of each member, grouped CSR-style; ordering by (parent,
        # child id) keeps the tour - and therefore the structure - fully
        # deterministic for a given contraction
        child_local = local[contracted]
        parent_local = local[parent[contracted]]
        order = np.lexsort((child_local, parent_local))
        children = child_local[order]
        child_indptr = np.zeros(num_members + 1, dtype=np.int64)
        np.add.at(child_indptr[1:], parent_local, 1)
        np.cumsum(child_indptr, out=child_indptr)

        local_depth = depth[members].astype(np.int64)
        roots_local = local[members[depth[members] == 0]]

        tour_length = 2 * num_members - len(roots_local)
        euler = np.empty(tour_length, dtype=np.int64)
        euler_depth = np.empty(tour_length, dtype=np.int64)
        first = np.full(num_members, -1, dtype=np.int64)

        # iterative DFS emitting the Euler tour: a vertex is appended on
        # first entry and again after each child subtree returns
        indptr_list = child_indptr.tolist()
        children_list = children.tolist()
        depth_list = local_depth.tolist()
        position = 0
        for tree_root in roots_local.tolist():
            stack = [(tree_root, indptr_list[tree_root])]
            first[tree_root] = position
            euler[position] = tree_root
            euler_depth[position] = depth_list[tree_root]
            position += 1
            while stack:
                vertex, cursor = stack[-1]
                if cursor < indptr_list[vertex + 1]:
                    stack[-1] = (vertex, cursor + 1)
                    child = children_list[cursor]
                    stack.append((child, indptr_list[child]))
                    first[child] = position
                    euler[position] = child
                    euler_depth[position] = depth_list[child]
                    position += 1
                else:
                    stack.pop()
                    if stack:
                        parent_vertex = stack[-1][0]
                        euler[position] = parent_vertex
                        euler_depth[position] = depth_list[parent_vertex]
                        position += 1
        assert position == tour_length

        self._euler = euler
        self._euler_depth = euler_depth
        self._first = first
        self._table = _build_sparse_table(euler_depth)

    # ------------------------------------------------------------------ #
    #: names of the derived arrays a persisted sidecar stores
    STATE_ARRAY_NAMES = ("members", "local", "euler", "euler_depth", "first", "table")

    def state_arrays(self) -> dict:
        """The derived Euler-tour state as plain arrays (for persistence).

        ``dist_to_root`` is *not* included - it belongs to the contraction
        (already persisted with the index); a sidecar therefore only adds
        the tour structure that is otherwise rebuilt per process.
        """
        return {
            "members": self._members,
            "local": self._local,
            "euler": self._euler,
            "euler_depth": self._euler_depth,
            "first": self._first,
            "table": self._table,
        }

    @classmethod
    def from_state(cls, dist_to_root: np.ndarray, arrays: dict) -> "TreeDistanceResolver":
        """Rebuild a resolver from persisted :meth:`state_arrays` buffers.

        The arrays are used as-is (read-only memory maps stay memory
        maps), so a mmap-loaded sidecar shares one physical copy of the
        tour across serving processes.  Answers are bit-identical to a
        freshly built resolver: the final arithmetic only reads
        ``dist_to_root`` values gathered through these arrays.
        """
        resolver = cls.__new__(cls)
        resolver._dist_to_root = np.asarray(dist_to_root, dtype=np.float64)
        # asanyarray keeps read-only np.memmap buffers memory-mapped
        # instead of silently copying them into the process
        resolver._members = np.asanyarray(arrays["members"], dtype=np.int64)
        resolver._local = np.asanyarray(arrays["local"], dtype=np.int64)
        resolver._euler = np.asanyarray(arrays["euler"], dtype=np.int64)
        resolver._euler_depth = np.asanyarray(arrays["euler_depth"], dtype=np.int64)
        resolver._first = np.asanyarray(arrays["first"], dtype=np.int64)
        resolver._table = np.asanyarray(arrays["table"], dtype=np.int64)
        return resolver

    @property
    def num_members(self) -> int:
        """Number of vertices covered by the tour (members of non-trivial trees)."""
        return len(self._members)

    def lca(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Lowest common ancestors (original ids) of same-root vertex pairs."""
        left = self._first[self._local[u]]
        right = self._first[self._local[v]]
        lo = np.minimum(left, right)
        hi = np.maximum(left, right)
        span = hi - lo + 1
        level = _floor_log2(span)
        table = self._table
        depth = self._euler_depth
        a = table[level, lo]
        b = table[level, hi - (np.int64(1) << level) + 1]
        position = np.where(depth[b] < depth[a], b, a)
        return self._members[self._euler[position]]

    def distances(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Tree distances for a batch of pairs sharing an attachment root.

        Bit-identical to
        :meth:`~repro.graph.contraction.ContractedGraph.tree_lca_distance`
        per pair: the same three ``dist_to_root`` values enter the same
        float64 expression in the same order.
        """
        lca = self.lca(u, v)
        dist_to_root = self._dist_to_root
        return dist_to_root[u] + dist_to_root[v] - 2.0 * dist_to_root[lca]


def _build_sparse_table(depth: np.ndarray) -> np.ndarray:
    """Argmin sparse table over ``depth``: ``table[k, i]`` is the position
    of the minimum in ``depth[i : i + 2**k]`` (ties keep the leftmost, so
    results are deterministic; for an Euler tour any occurrence of the
    minimum maps to the same vertex anyway).
    """
    m = len(depth)
    if m == 0:
        return np.empty((1, 0), dtype=np.int64)
    levels = int(m).bit_length()  # 2**(levels-1) <= m
    table = np.empty((levels, m), dtype=np.int64)
    table[0] = np.arange(m, dtype=np.int64)
    for k in range(1, levels):
        half = 1 << (k - 1)
        width = m - (1 << k) + 1
        left = table[k - 1, :width]
        right = table[k - 1, half : half + width]
        table[k, :width] = np.where(depth[right] < depth[left], right, left)
        # positions past `width` would index out of range; they are never
        # queried (the query clamps the level to the span), fill for safety
        table[k, width:] = table[k - 1, width:]
    return table


def _floor_log2(x: np.ndarray) -> np.ndarray:
    """Element-wise ``floor(log2(x))`` for positive int64 arrays."""
    # bit_length - 1 without leaving integer arithmetic: smear + popcount
    # is overkill for the small spans here; use the float exponent, which
    # is exact for x < 2**53 (tour positions are far below that)
    return (np.frexp(x.astype(np.float64))[1] - 1).astype(np.int64)
