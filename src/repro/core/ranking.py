"""Cut-vertex ranking (Equation 6).

Before labels are constructed for a tree node, its cut vertices are ranked
by how often their shortest paths to other vertices are "covered" by
another cut vertex.  Highly covered vertices are placed at the *tail* of
the per-node order, which is what allows tail pruning (Definition 4.18) to
drop suffixes of distance arrays without storing vertex identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.flat import FlatWorkingGraph
from repro.core.pruned_dijkstra import dist_and_prune_dense
from repro.partition.working_graph import WorkingAdjacency


@dataclass
class CutRanking:
    """The ranked cut vertices of one tree node.

    ``ordered`` lists the cut vertices in ascending rank (least coverable
    first - these occupy the early, never-pruned positions of the distance
    arrays).  ``coverage`` stores the raw Equation 6 counts.
    """

    ordered: List[int]
    coverage: Dict[int, int]


def rank_cut_vertices(
    adjacency: WorkingAdjacency,
    cut: Sequence[int],
    flat: Optional[FlatWorkingGraph] = None,
) -> CutRanking:
    """Rank the cut vertices of a node by their coverage count (Equation 6).

    For each cut vertex ``v`` we run one pruneability-tracking Dijkstra
    with the other cut vertices as the prune set; the coverage count
    ``P#(v)`` is the number of vertices whose shortest path from ``v``
    passes through another cut vertex.  Ties break on the vertex id so
    construction is deterministic.

    ``flat`` may pass in a pre-built CSR snapshot of ``adjacency`` (the
    construction shares one snapshot between ranking and labelling).
    """
    cut_list = list(cut)
    if len(cut_list) <= 1:
        return CutRanking(ordered=cut_list, coverage={v: 0 for v in cut_list})
    if flat is None:
        flat = FlatWorkingGraph(adjacency)
    cut_dense = flat.dense_ids(cut_list)
    coverage: Dict[int, int] = {}
    for v, v_dense in zip(cut_list, cut_dense):
        prune_ids = [c for c in cut_dense if c != v_dense]
        _, through = dist_and_prune_dense(flat, v_dense, prune_ids)
        coverage[v] = sum(through)
    ordered = sorted(cut_list, key=lambda v: (coverage[v], v))
    return CutRanking(ordered=ordered, coverage=coverage)
