"""Cut-vertex ranking (Equation 6).

Before labels are constructed for a tree node, its cut vertices are ranked
by how often their shortest paths to other vertices are "covered" by
another cut vertex.  Highly covered vertices are placed at the *tail* of
the per-node order, which is what allows tail pruning (Definition 4.18) to
drop suffixes of distance arrays without storing vertex identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.pruned_dijkstra import PrunedDistances, dist_and_prune
from repro.partition.working_graph import WorkingAdjacency


@dataclass
class CutRanking:
    """The ranked cut vertices of one tree node.

    ``ordered`` lists the cut vertices in ascending rank (least coverable
    first - these occupy the early, never-pruned positions of the distance
    arrays).  ``coverage`` stores the raw Equation 6 counts.
    """

    ordered: List[int]
    coverage: Dict[int, int]


def rank_cut_vertices(adjacency: WorkingAdjacency, cut: Sequence[int]) -> CutRanking:
    """Rank the cut vertices of a node by their coverage count (Equation 6).

    For each cut vertex ``v`` we run one pruneability-tracking Dijkstra
    with the other cut vertices as the prune set; the coverage count
    ``P#(v)`` is the number of vertices whose shortest path from ``v``
    passes through another cut vertex.  Ties break on the vertex id so
    construction is deterministic.
    """
    cut_list = list(cut)
    if len(cut_list) <= 1:
        return CutRanking(ordered=cut_list, coverage={v: 0 for v in cut_list})
    cut_set = set(cut_list)
    coverage: Dict[int, int] = {}
    for v in cut_list:
        search: PrunedDistances = dist_and_prune(adjacency, v, cut_set - {v})
        coverage[v] = sum(1 for flagged in search.through_prune_set.values() if flagged)
    ordered = sorted(cut_list, key=lambda v: (coverage[v], v))
    return CutRanking(ordered=ordered, coverage=coverage)
