"""Cut-vertex ranking (Equation 6).

Before labels are constructed for a tree node, its cut vertices are ranked
by how often their shortest paths to other vertices are "covered" by
another cut vertex.  Highly covered vertices are placed at the *tail* of
the per-node order, which is what allows tail pruning (Definition 4.18) to
drop suffixes of distance arrays without storing vertex identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.backends import BackendSpec, resolve_backend
from repro.core.flat import FlatWorkingGraph
from repro.partition.working_graph import WorkingAdjacency


@dataclass
class CutRanking:
    """The ranked cut vertices of one tree node.

    ``ordered`` lists the cut vertices in ascending rank (least coverable
    first - these occupy the early, never-pruned positions of the distance
    arrays).  ``coverage`` stores the raw Equation 6 counts.
    """

    ordered: List[int]
    coverage: Dict[int, int]


def rank_cut_vertices(
    adjacency: Optional[WorkingAdjacency],
    cut: Sequence[int],
    flat: Optional[FlatWorkingGraph] = None,
    backend: BackendSpec = None,
) -> CutRanking:
    """Rank the cut vertices of a node by their coverage count (Equation 6).

    For each cut vertex ``v`` we run one pruneability-tracking search with
    the other cut vertices as the prune set; the coverage count ``P#(v)``
    is the number of vertices whose shortest path from ``v`` passes
    through another cut vertex.  Ties break on the vertex id so
    construction is deterministic.

    ``flat`` may pass in a pre-built CSR snapshot of ``adjacency`` (the
    construction shares one snapshot between ranking and labelling, which
    also lets the ``csr`` backend reuse the distance rows across the two
    passes).  ``backend`` selects the
    :class:`~repro.core.backends.ShortestPathBackend` running the
    searches.
    """
    cut_list = list(cut)
    if len(cut_list) <= 1:
        return CutRanking(ordered=cut_list, coverage={v: 0 for v in cut_list})
    if flat is None:
        if adjacency is None:
            raise ValueError("provide the subgraph as 'adjacency' or 'flat'")
        flat = FlatWorkingGraph(adjacency)
    search = resolve_backend(backend)
    cut_dense = flat.dense_ids(cut_list)
    prune_sets = [[c for c in cut_dense if c != v_dense] for v_dense in cut_dense]
    _, prunes = search.dist_and_prune_many(flat, cut_dense, prune_sets)
    coverage: Dict[int, int] = {
        v: int(sum(through)) for v, through in zip(cut_list, prunes)
    }
    ordered = sorted(cut_list, key=lambda v: (coverage[v], v))
    return CutRanking(ordered=ordered, coverage=coverage)
