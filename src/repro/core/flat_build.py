"""Dict-free HC2L subtree construction (the process-parallel work unit).

The process-parallel builder (:class:`~repro.core.parallel.ParallelHC2LBuilder`
with ``parallel_mode="process"``) ships independent hierarchy subtrees to
worker processes.  A work unit must be self-contained and cheap to pickle,
so it is expressed entirely over :class:`~repro.core.flat.FlatWorkingGraph`
CSR snapshots (numpy arrays) instead of the dict-of-dicts working
adjacency the sequential builder recurses on:

* :func:`node_step` - one node of the interleaved construction (cut,
  ranking, labelling arrays, shortcut-enhanced child snapshots), with the
  child snapshots derived by
  :meth:`~repro.core.flat.FlatWorkingGraph.induce_with_shortcuts` on the
  parent CSR rather than a fresh dict restriction.
* :func:`build_subtree` - the full recursion below one node, returning a
  picklable :class:`SubtreeResult`: the preorder node records needed to
  graft the subtree into the global hierarchy plus one
  :class:`~repro.core.flat.FlatLabelling` fragment holding the subtree's
  label levels in DFS (cut-concatenation) order.
* :func:`build_subtree_payload` - the process-pool entry point; rebuilds
  the snapshot from a plain-arrays payload dict.

Every step replicates the sequential builder's vertex orderings, edge
orderings and tie-breaks, so the labels a worker produces are
bit-identical to the ones the serial recursion would have written for the
same subtree (``tests/test_process_parallel.py`` asserts this on whole
graphs, ``tests/test_differential_fuzz.py`` across graph families).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backends import BackendSpec, ShortestPathBackend, resolve_backend
from repro.core.flat import FlatLabelling, FlatWorkingGraph
from repro.core.labelling import node_distance_arrays
from repro.core.ranking import CutRanking, rank_cut_vertices
from repro.partition.cut import balanced_cut
from repro.partition.shortcuts import compute_shortcuts
from repro.utils.timer import Timer


@dataclass
class NodeStep:
    """Everything one construction node produces, before recursing.

    ``children`` lists ``(child_snapshot, side, bit, num_shortcuts)`` for
    the non-empty children (empty partitions are skipped, mirroring the
    sequential builder).
    """

    ranking: CutRanking
    arrays: Dict[int, List[float]]
    is_leaf: bool
    children: List[Tuple[FlatWorkingGraph, str, int, int]]
    #: wall-clock seconds the balanced cut took (0.0 for leaves); feeds
    #: the per-node cut-vs-label timing split in ConstructionStats
    seconds_cut: float = 0.0


def node_step(
    flat: FlatWorkingGraph,
    depth: int,
    *,
    beta: float,
    leaf_size: int,
    tail_pruning: bool,
    max_depth: int,
    backend: ShortestPathBackend,
    timer: Timer,
    flow_method: str = "auto",
) -> NodeStep:
    """Run one node of the interleaved construction over a CSR snapshot.

    The dict-free counterpart of ``HC2LBuilder._build_node``'s body: cut
    the subgraph, rank the cut, compute the distance arrays, and derive the
    shortcut-enhanced child snapshots - same decisions, same orderings,
    no recursion and no dict materialisation.
    """
    n = len(flat.vertices)
    force_leaf = n <= leaf_size or depth >= max_depth
    cut_result = None
    seconds_cut = 0.0
    if not force_leaf:
        cut_started = time.perf_counter()
        with timer.measure("hierarchy"):
            cut_result = balanced_cut(
                beta=beta, flat=flat, backend=backend, flow_method=flow_method
            )
        seconds_cut = time.perf_counter() - cut_started
        if not cut_result.part_a or not cut_result.part_b:
            force_leaf = True

    if force_leaf:
        with timer.measure("labelling"):
            ranking = rank_cut_vertices(
                None, list(flat.vertices), flat=flat, backend=backend
            )
            arrays, _ = node_distance_arrays(
                None, ranking, tail_pruning, flat=flat, backend=backend
            )
        return NodeStep(
            ranking=ranking,
            arrays=arrays,
            is_leaf=True,
            children=[],
            seconds_cut=seconds_cut,
        )

    assert cut_result is not None
    with timer.measure("labelling"):
        ranking = rank_cut_vertices(None, cut_result.cut, flat=flat, backend=backend)
        arrays, cut_distances = node_distance_arrays(
            None, ranking, tail_pruning, flat=flat, backend=backend
        )

    children: List[Tuple[FlatWorkingGraph, str, int, int]] = []
    for part, side, bit in ((cut_result.part_a, "left", 0), (cut_result.part_b, "right", 1)):
        if not part:
            continue
        # induce the child once: the shortcut searches run over the
        # restriction, then the shortcut overlay reuses the same snapshot
        with timer.measure("snapshot"):
            within = flat.induce(part)
        with timer.measure("shortcuts"):
            shortcuts = compute_shortcuts(
                None,
                ranking.ordered,
                part,
                cut_distances,
                backend=backend,
                flat=flat,
                within_flat=within,
            )
        with timer.measure("snapshot"):
            child = within.overlay_shortcuts(shortcuts)
        children.append((child, side, bit, len(shortcuts)))
    return NodeStep(
        ranking=ranking,
        arrays=arrays,
        is_leaf=False,
        children=children,
        seconds_cut=seconds_cut,
    )


def fragment_from_levels(levels_per_vertex: Sequence[List[List[float]]]) -> FlatLabelling:
    """Pack per-vertex level lists into a :class:`FlatLabelling` fragment.

    Position ``p`` of the fragment holds the levels of
    ``levels_per_vertex[p]`` (the caller fixes the vertex order); empty
    level arrays survive as zero-length levels, exactly like
    ``HC2LLabelling.append_level`` records empty-cut depths.
    """
    n = len(levels_per_vertex)
    level_counts = np.fromiter(
        (len(levels) for levels in levels_per_vertex), dtype=np.int64, count=n
    )
    vertex_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(level_counts, out=vertex_indptr[1:])
    all_arrays = [array for levels in levels_per_vertex for array in levels]
    lengths = np.fromiter(map(len, all_arrays), dtype=np.int64, count=len(all_arrays))
    level_indptr = np.zeros(len(all_arrays) + 1, dtype=np.int64)
    np.cumsum(lengths, out=level_indptr[1:])
    total = int(level_indptr[-1])
    values = np.fromiter(chain.from_iterable(all_arrays), dtype=np.float64, count=total)
    return FlatLabelling(n, values, level_indptr, vertex_indptr)


@dataclass
class SubtreeResult:
    """A completed subtree, in picklable plain-array form.

    The node records are in preorder (node, then left subtree, then right
    subtree) - the exact order the sequential recursion would have called
    ``hierarchy.add_node`` - with parents referenced by *local* preorder
    index (-1 for the subtree root, whose parent lives in the coordinating
    process).  ``dfs_vertices`` concatenates the per-node cuts in the same
    preorder, which covers every subtree vertex exactly once, and the
    ``values`` / ``level_indptr`` / ``vertex_indptr`` triple is the
    :class:`FlatLabelling` fragment over that vertex order.
    """

    depths: List[int]
    bits: List[int]
    parents: List[int]
    sides: List[Optional[str]]
    leaf_flags: List[bool]
    sizes: List[int]
    cuts: List[List[int]]
    dfs_vertices: np.ndarray
    values: np.ndarray
    level_indptr: np.ndarray
    vertex_indptr: np.ndarray
    num_leaves: int
    num_empty_cuts: int
    num_shortcuts: int
    max_depth: int
    durations: Dict[str, float]
    node_timings: List[Tuple[int, int, float, float]]

    def fragment(self) -> FlatLabelling:
        """The label fragment over ``dfs_vertices`` order."""
        return FlatLabelling(
            len(self.dfs_vertices), self.values, self.level_indptr, self.vertex_indptr
        )


def build_subtree(
    flat: FlatWorkingGraph,
    depth: int,
    bits: int,
    *,
    beta: float,
    leaf_size: int,
    tail_pruning: bool,
    max_depth: int,
    backend: BackendSpec = None,
    flow_method: str = "auto",
) -> SubtreeResult:
    """Build the whole hierarchy subtree rooted at ``flat`` (dict-free).

    Runs the same recursion as ``HC2LBuilder._build_node`` but over CSR
    snapshots only, accumulating node records and per-vertex label levels
    locally; the caller (worker process or inline fallback) grafts the
    returned :class:`SubtreeResult` into the global hierarchy/labelling.
    """
    search = resolve_backend(backend)
    timer = Timer()
    records: List[Tuple[int, int, int, Optional[str], bool, int, List[int]]] = []
    labels: Dict[int, List[List[float]]] = {v: [] for v in flat.vertices}
    counters = {
        "num_leaves": 0,
        "num_empty_cuts": 0,
        "num_shortcuts": 0,
        "max_depth": depth,
    }
    node_timings: List[Tuple[int, int, float, float]] = []

    def _build(
        flat: FlatWorkingGraph, depth: int, bits: int, parent: int, side: Optional[str]
    ) -> None:
        n = len(flat.vertices)
        if n == 0:
            return
        node_started = time.perf_counter()
        counters["max_depth"] = max(counters["max_depth"], depth)
        step = node_step(
            flat,
            depth,
            beta=beta,
            leaf_size=leaf_size,
            tail_pruning=tail_pruning,
            max_depth=max_depth,
            backend=search,
            timer=timer,
            flow_method=flow_method,
        )
        local = len(records)
        records.append((depth, bits, parent, side, step.is_leaf, n, step.ranking.ordered))
        if step.is_leaf:
            counters["num_leaves"] += 1
        elif not step.ranking.ordered:
            counters["num_empty_cuts"] += 1
        for v in flat.vertices:
            labels[v].append(step.arrays[v])
        counters["num_shortcuts"] += sum(child[3] for child in step.children)
        node_timings.append(
            (depth, n, time.perf_counter() - node_started, step.seconds_cut)
        )
        for child_flat, child_side, child_bit, _ in step.children:
            _build(child_flat, depth + 1, (bits << 1) | child_bit, local, child_side)

    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 10_000))
    try:
        _build(flat, depth, bits, -1, None)
    finally:
        sys.setrecursionlimit(limit)

    dfs = [v for record in records for v in record[6]]
    if len(dfs) != len(flat.vertices):
        raise AssertionError(
            f"subtree cuts cover {len(dfs)} of {len(flat.vertices)} vertices"
        )
    fragment = fragment_from_levels([labels[v] for v in dfs])
    return SubtreeResult(
        depths=[r[0] for r in records],
        bits=[r[1] for r in records],
        parents=[r[2] for r in records],
        sides=[r[3] for r in records],
        leaf_flags=[r[4] for r in records],
        sizes=[r[5] for r in records],
        cuts=[r[6] for r in records],
        dfs_vertices=np.asarray(dfs, dtype=np.int64),
        values=fragment.values,
        level_indptr=fragment.level_indptr,
        vertex_indptr=fragment.vertex_indptr,
        num_leaves=counters["num_leaves"],
        num_empty_cuts=counters["num_empty_cuts"],
        num_shortcuts=counters["num_shortcuts"],
        max_depth=counters["max_depth"],
        durations=dict(timer.durations),
        node_timings=node_timings,
    )


def build_subtree_payload(payload: Dict[str, object]) -> SubtreeResult:
    """Process-pool entry point: rebuild the snapshot and run the subtree.

    ``payload`` carries the CSR triple as numpy arrays (cheap to pickle),
    the vertex-id map, the node position (``depth``, ``bits``) and the
    builder parameters.  The backend travels by *name*; a custom backend
    instance cannot cross a process boundary, so the coordinator only
    ships named backends to workers (see ``ParallelHC2LBuilder``).
    """
    vertices = np.asarray(payload["vertices"], dtype=np.int64)
    flat = FlatWorkingGraph.from_csr_arrays(
        vertices.tolist(), payload["indptr"], payload["indices"], payload["weights"]
    )
    return build_subtree(
        flat,
        int(payload["depth"]),
        payload["bits"],  # python int; may exceed 64 bits at deep levels
        beta=float(payload["beta"]),
        leaf_size=int(payload["leaf_size"]),
        tail_pruning=bool(payload["tail_pruning"]),
        max_depth=int(payload["max_depth"]),
        backend=payload["backend"],
        # absent in payloads from older coordinators -> backend default
        flow_method=str(payload.get("flow_method", "auto")),
    )
