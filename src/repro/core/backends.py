"""Pluggable shortest-path backends for HC2L construction.

Construction cost is dominated by single-source searches: one
pruneability-tracking search per cut vertex for the ranking pass
(Equation 6) and again for the labelling pass (Algorithm 5), plus one
plain search per border vertex for the shortcut computation
(Algorithm 3).  The original implementation runs all of them through the
interpreted binary-heap Dijkstra of :mod:`repro.core.pruned_dijkstra` /
:meth:`~repro.core.flat.FlatWorkingGraph.dijkstra`.

:class:`ShortestPathBackend` is the seam between those passes and the
search implementation.  Three backends ship:

``heap``
    The existing pure-Python binary-heap searches, unchanged.  Always
    available; the reference for bit-identical comparisons.

``dial``
    Heap-free monotone bucket-queue (Dial) searches for snapshots whose
    weights are integers after an exact power-of-two scaling.  Because
    float64 addition of such dyadic weights is exact while sums stay
    under ``2**53``, the bucket distances reproduce the heap Dijkstra's
    float sums *bit-identically*; non-eligible snapshots fall back to
    the ``csr`` searches (or ``heap`` without scipy).  Algorithm 4
    pruneability flags are recovered by the same shortest-path-DAG pass
    the ``csr`` backend uses.

``csr``
    Heap-free searches over the CSR snapshot: distances come from one
    *batched* ``scipy.sparse.csgraph.dijkstra`` call per node (all cut /
    border sources at once, C speed) - or, when scipy is missing, from a
    vectorised numpy Bellman-Ford sweep - and the pruneability flags are
    recovered from the finished distance arrays by the shortest-path-DAG
    pass of :func:`~repro.core.pruned_dijkstra.prune_flags_from_distances`.
    Because the ranking and labelling passes search from the same cut
    vertices, the per-source distance rows are cached on the node's
    :class:`~repro.core.flat.FlatWorkingGraph` snapshot, halving the
    distance work per node.  Both Dijkstra variants perform the same
    ``dist[u] + w`` float64 relaxations, so distances - and therefore
    labels - are bit-identical to the heap backend (asserted by the
    backend-equivalence tests).

Tiny subgraphs (the bulk of the recursion's nodes by count, not by cost)
are delegated away from the matrix machinery even under ``csr``: below a
few dozen vertices the per-call overhead of building a scipy matrix
outweighs the scalar loops.  Those delegated snapshots run the Dial
bucket queue when their weights are integer-scalable and the binary heap
otherwise.  Since all backends produce identical results, mixing is safe.

``resolve_backend`` maps the ``"auto"`` / ``"heap"`` / ``"csr"`` /
``"dial"`` names used by :class:`~repro.core.index.HC2LParameters` and
the CLI's ``repro build --backend`` to backend instances; ``auto`` picks
``csr`` when scipy is importable and ``dial`` (whose non-integer
fallback is the heap) otherwise.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.flat import FlatWorkingGraph
from repro.core.pruned_dijkstra import dist_and_prune_dense, prune_flags_from_distances

INF = float("inf")

BACKEND_NAMES = ("auto", "heap", "csr", "dial")

try:  # pragma: no cover - exercised via whichever env runs the suite
    from scipy.sparse import csr_matrix as _scipy_csr_matrix
    from scipy.sparse.csgraph import connected_components as _scipy_components
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra
except ImportError:  # pragma: no cover
    _scipy_csr_matrix = None
    _scipy_components = None
    _scipy_dijkstra = None


def scipy_available() -> bool:
    """Whether the scipy csgraph routines can back the ``csr`` backend."""
    return _scipy_dijkstra is not None


class ShortestPathBackend:
    """Interface of a construction-side shortest-path implementation.

    All vertex ids are dense local ids of the ``flat`` snapshot; distance
    rows cover every vertex of the snapshot with ``inf`` for unreached
    ones.  Implementations must return distances bit-identical to the
    heap Dijkstra (same float64 relaxations), which makes backends freely
    interchangeable mid-build.
    """

    name: str = "abstract"

    #: max-flow implementation the partition layer's balanced cuts should
    #: use when the build does not pin one explicitly - a name from
    #: :data:`repro.flow.vertex_cut.FLOW_METHODS`.  The canonical minimum
    #: vertex cuts are unique across all maximum flows, so the choice
    #: never changes a cut - only how fast it is found.  The early-exit
    #: Edmonds-Karp roughly halves the hierarchy phase versus the Dinitz
    #: reference on the bench region population (attachment sets keep the
    #: source-sink BFS distance tiny, so one BFS per unit of flow is
    #: near-optimal), hence the dependency-free default; ``dinitz`` stays
    #: available as the reference via an explicit ``flow_method``.  An
    #: explicit ``HC2LParameters.flow_method`` other than ``"auto"``
    #: overrides this per-backend default.
    flow_method: str = "python_ek"

    def sssp_many(self, flat: FlatWorkingGraph, sources: Sequence[int]) -> List[Sequence[float]]:
        """Single-source distance rows for a batch of sources."""
        raise NotImplementedError

    def sssp_array(self, flat: FlatWorkingGraph, source: int) -> np.ndarray:
        """One distance row as a float64 numpy array.

        Convenience for numpy-side callers (the partition layer's seed
        searches do arithmetic on whole rows); same values as
        ``sssp_many`` bit for bit, implementations merely skip a
        list round-trip when they already hold the row as an array.
        """
        return np.asarray(self.sssp_many(flat, [source])[0], dtype=np.float64)

    def components_masked(
        self, flat: FlatWorkingGraph, keep: np.ndarray
    ) -> List[List[int]]:
        """Connected components of the snapshot restricted to ``keep``.

        ``keep`` is a boolean mask over dense ids; the result is in the
        same canonical form as :meth:`components` (sorted members,
        components ordered by smallest member).  The default walks the
        parent CSR lists directly, skipping excluded vertices - no
        induced snapshot; array-native backends override it with a
        vectorised carve for large leftovers.
        """
        return _components_python_masked(flat, keep)

    def components(self, flat: FlatWorkingGraph) -> List[List[int]]:
        """Connected components of a snapshot, in canonical form.

        Each component is a sorted list of *original* vertex ids and the
        components are ordered by their smallest member - exactly the
        output contract of
        :func:`repro.graph.components.components_of_adjacency`, so the
        partition layer can swap between the dict walk and the backend
        without changing a single tie-break.
        """
        return _components_python(flat)

    def dist_and_prune_many(
        self,
        flat: FlatWorkingGraph,
        roots: Sequence[int],
        prune_sets: Sequence[Sequence[int]],
    ) -> Tuple[List[Sequence[float]], List[Sequence[bool]]]:
        """Distances + Algorithm 4 pruneability flags for a batch of roots.

        ``prune_sets[i]`` is the prune set of ``roots[i]`` (the ranking
        pass prunes against every other cut vertex, the labelling pass
        against the earlier-ranked prefix).
        """
        raise NotImplementedError


class HeapBackend(ShortestPathBackend):
    """The pure-Python binary-heap searches (always available)."""

    name = "heap"

    def sssp_many(self, flat: FlatWorkingGraph, sources: Sequence[int]) -> List[Sequence[float]]:
        return [flat.dijkstra(source) for source in sources]

    def dist_and_prune_many(
        self,
        flat: FlatWorkingGraph,
        roots: Sequence[int],
        prune_sets: Sequence[Sequence[int]],
    ) -> Tuple[List[Sequence[float]], List[Sequence[bool]]]:
        dists: List[Sequence[float]] = []
        prunes: List[Sequence[bool]] = []
        for root, prune_ids in zip(roots, prune_sets):
            d, p = dist_and_prune_dense(flat, root, prune_ids)
            dists.append(d)
            prunes.append(p)
        return dists, prunes


class DialBackend(ShortestPathBackend):
    """Monotone bucket-queue (Dial) searches for integer-scalable weights.

    A snapshot is *eligible* when every edge weight is strictly positive,
    finite, and an integer after multiplication by a single power of two
    ``2**exp`` (``exp <= max_scale_exp``) with the scaled weights bounded
    by ``max_scaled_weight``.  Dyadic weights make every float64 addition
    the heap Dijkstra performs exact (each partial sum is an integer
    multiple of ``2**-exp`` below ``2**53``), so integer bucket distances
    converted back through ``math.ldexp`` equal the heap's float
    distances **bit for bit** - asserted by the differential fuzz and
    partition-backend suites.

    Non-eligible snapshots (and snapshots above ``max_vertices``, where
    the batched C-speed scipy searches win regardless of weight shape)
    run on the fallback backend: ``csr`` when scipy is importable,
    ``heap`` otherwise, both bit-identical anyway.  Algorithm 4
    pruneability flags come from the same finished-distance DAG pass the
    ``csr`` backend uses, so no flag logic is duplicated.

    The eligibility verdict (and the scaled integer weights) is cached on
    the snapshot under :data:`_SCALE_CACHE`; the builder touches each
    node's snapshot many times, the detection sweep runs once.
    """

    name = "dial"
    #: the compact Edmonds-Karp is the fastest dependency-free flow
    #: solver on the bench region population, matching this backend's
    #: pure-python character
    flow_method = "python_ek"

    _SCALE_CACHE = "dial_scale"

    def __init__(
        self,
        fallback: Optional[ShortestPathBackend] = None,
        max_scaled_weight: int = 4096,
        max_scale_exp: int = 20,
        max_vertices: int = 4096,
    ) -> None:
        self.max_scaled_weight = max_scaled_weight
        self.max_scale_exp = max_scale_exp
        self.max_vertices = max_vertices
        self._fallback = fallback

    @property
    def fallback(self) -> ShortestPathBackend:
        """Backend for non-eligible snapshots (lazy to avoid ctor cycles)."""
        if self._fallback is None:
            self._fallback = CSRBackend() if scipy_available() else HeapBackend()
        return self._fallback

    # ------------------------------------------------------------------ #
    def sssp_many(self, flat: FlatWorkingGraph, sources: Sequence[int]) -> List[Sequence[float]]:
        scale = self._scale(flat)
        if scale is None:
            return self.fallback.sssp_many(flat, sources)
        return [self._sssp(flat, scale, int(source)) for source in sources]

    def dist_and_prune_many(
        self,
        flat: FlatWorkingGraph,
        roots: Sequence[int],
        prune_sets: Sequence[Sequence[int]],
    ) -> Tuple[List[Sequence[float]], List[Sequence[bool]]]:
        scale = self._scale(flat)
        if scale is None:
            return self.fallback.dist_and_prune_many(flat, roots, prune_sets)
        dists: List[Sequence[float]] = []
        prunes: List[Sequence[bool]] = []
        for root, prune_ids in zip(roots, prune_sets):
            dist = self._sssp(flat, scale, int(root))
            dists.append(dist)
            # eligibility guarantees strictly positive weights, so the
            # DAG flag-recovery pass applies
            prunes.append(prune_flags_from_distances(flat, root, prune_ids, dist))
        return dists, prunes

    # ------------------------------------------------------------------ #
    def _scale(self, flat: FlatWorkingGraph) -> Optional[Tuple[int, int, List[int]]]:
        """``(exp, max_scaled_weight, scaled_int_weights)`` or ``None``."""
        if self._SCALE_CACHE in flat.cache:
            return flat.cache[self._SCALE_CACHE]
        result: Optional[Tuple[int, int, List[int]]] = None
        n = len(flat.vertices)
        if 0 < n <= self.max_vertices:
            _, _, weights = flat.csr_arrays()
            if weights.size == 0:
                result = (0, 0, [])
            elif float(weights.min()) > 0.0 and np.isfinite(weights.max()):
                for exp in range(self.max_scale_exp + 1):
                    scaled = np.ldexp(weights, exp)
                    if float(scaled.max()) > self.max_scaled_weight:
                        break
                    if np.array_equal(scaled, np.floor(scaled)):
                        longest = (n - 1) * int(scaled.max())
                        if longest < (1 << 52):  # every float sum exact
                            result = (exp, int(scaled.max()), scaled.astype(np.int64).tolist())
                        break
        flat.cache[self._SCALE_CACHE] = result
        return result

    def _sssp(
        self, flat: FlatWorkingGraph, scale: Tuple[int, int, List[int]], source: int
    ) -> List[float]:
        """One Dial search; returns the float distance row (heap-identical)."""
        exp, bound, int_weights = scale
        indptr = flat.indptr
        indices = flat.indices
        n = len(flat.vertices)
        big = 1 << 62
        dist = [big] * n
        # ring of bound + 1 buckets: a tentative distance never exceeds
        # the current settled distance by more than the largest weight,
        # so slots can be reused modulo the ring size (Dial's invariant)
        size = bound + 1
        ring: List[List[int]] = [[] for _ in range(size)]
        dist[source] = 0
        ring[0].append(source)
        pending = 1
        d = 0
        while pending:
            bucket = ring[d % size]
            while bucket:
                v = bucket.pop()
                pending -= 1
                if dist[v] != d:
                    continue  # superseded by a shorter entry
                for i in range(indptr[v], indptr[v + 1]):
                    w = indices[i]
                    nd = d + int_weights[i]
                    if nd < dist[w]:
                        dist[w] = nd
                        ring[nd % size].append(w)
                        pending += 1
            d += 1
        inf = INF
        # ldexp is exact, so scaled-integer distances map onto the very
        # float64 values the heap Dijkstra accumulated
        return [math.ldexp(x, -exp) if x < big else inf for x in dist]


class CSRBackend(ShortestPathBackend):
    """Heap-free searches over the CSR snapshot (scipy or numpy).

    Parameters
    ----------
    min_vertices:
        Snapshots smaller than this are delegated to the heap backend -
        the fixed per-call cost of assembling a scipy matrix dominates on
        the recursion's many tiny leaf nodes.  Results are identical
        either way.
    """

    name = "csr"
    flow_method = "matrix"

    _DIST_CACHE = "csr_dist_rows"
    _ARRAY_CACHE = "csr_dist_arrays"
    _MATRIX_CACHE = "csr_matrix"

    def __init__(
        self,
        min_vertices: int = 32,
        components_min_vertices: int = 64,
        masked_min_vertices: int = 1024,
    ) -> None:
        self.min_vertices = min_vertices
        # below this, one O(E) python BFS beats the sparse-constructor
        # cost of the scipy scan; above it the weighted matrix is built
        # eagerly and cached for the seed searches - see components()
        self.components_min_vertices = components_min_vertices
        # components_masked carves a fresh (never reused) matrix, so its
        # python-walk crossover sits much higher than components()'s
        self.masked_min_vertices = masked_min_vertices
        self._heap = HeapBackend()
        # delegated tiny snapshots run the Dial bucket queue when their
        # weights are integer-scalable (no binary heap at all) and the
        # heap otherwise; both are bit-identical to the batched searches
        self._small = DialBackend(fallback=self._heap)

    # ------------------------------------------------------------------ #
    def sssp_many(self, flat: FlatWorkingGraph, sources: Sequence[int]) -> List[Sequence[float]]:
        if self._delegate(flat):
            return self._small.sssp_many(flat, sources)
        rows = self._distance_rows(flat, sources)
        return [rows[source] for source in sources]

    def sssp_array(self, flat: FlatWorkingGraph, source: int) -> np.ndarray:
        if self._delegate(flat):
            return super().sssp_array(flat, source)
        source = int(source)
        cache: Dict[int, np.ndarray] = flat.cache.setdefault(self._ARRAY_CACHE, {})  # type: ignore[assignment]
        row = cache.get(source)
        if row is None:
            listed = flat.cache.get(self._DIST_CACHE, {}).get(source)  # type: ignore[union-attr]
            if listed is not None:
                row = np.asarray(listed, dtype=np.float64)
            elif _scipy_dijkstra is not None:
                matrix = self._snapshot_matrix(flat)
                row = np.asarray(
                    _scipy_dijkstra(matrix, directed=True, indices=[source]),
                    dtype=np.float64,
                ).ravel()
            else:
                row = _numpy_multi_source(flat, [source])[0]
            cache[source] = row
        return row

    def dist_and_prune_many(
        self,
        flat: FlatWorkingGraph,
        roots: Sequence[int],
        prune_sets: Sequence[Sequence[int]],
    ) -> Tuple[List[Sequence[float]], List[Sequence[bool]]]:
        if self._delegate(flat):
            return self._small.dist_and_prune_many(flat, roots, prune_sets)
        rows = self._distance_rows(flat, roots)
        dists: List[Sequence[float]] = []
        prunes: List[Sequence[bool]] = []
        for root, prune_ids in zip(roots, prune_sets):
            dist = rows[root]
            dists.append(dist)
            prunes.append(prune_flags_from_distances(flat, root, prune_ids, dist))
        return dists, prunes

    def components(self, flat: FlatWorkingGraph) -> List[List[int]]:
        if _scipy_components is None or _scipy_csr_matrix is None:
            return _components_python(flat)
        matrix = flat.cache.get(self._MATRIX_CACHE)
        if matrix is None:
            # delegated (tiny or zero-weight) snapshots never build a
            # matrix; just below that, one O(E) python walk still beats
            # the sparse-constructor cost even though the matrix would be
            # reused by the seed searches that follow
            if self._delegate(flat) or len(flat.vertices) < self.components_min_vertices:
                return _components_python(flat)
            # build (and cache) the weighted matrix the seed searches use:
            # weights play no role in connectivity, and sharing one matrix
            # means whichever of components()/seed SSSP runs first pays
            matrix = self._snapshot_matrix(flat)
        _, labels = _scipy_components(matrix, directed=False)
        return self._label_groups(flat.vertices, labels)

    def components_masked(
        self, flat: FlatWorkingGraph, keep: np.ndarray
    ) -> List[List[int]]:
        if _scipy_components is None or _scipy_csr_matrix is None:
            return super().components_masked(flat, keep)
        keep = np.asarray(keep, dtype=bool)
        sub_dense = np.nonzero(keep)[0]
        m = len(sub_dense)
        if m == 0:
            return []
        if m < self.masked_min_vertices:
            # the sparse constructor + C scan only amortise on large
            # leftovers; the masked python walk wins below (measured
            # crossover ~1k on the bench's region population)
            return _components_python_masked(flat, keep)
        # carve the kept subgraph straight out of the parent CSR arrays
        # (connectivity ignores weights, so int8 ones sidestep the
        # explicit-zero dropping that forces weighted matrices to the
        # python walk) - no induced snapshot, no dict rebuild
        indptr, indices, _ = flat.csr_arrays()
        n = len(flat.vertices)
        new_id = np.full(n, -1, dtype=np.int64)
        new_id[sub_dense] = np.arange(m, dtype=np.int64)
        tails = flat.tails()
        edge_keep = keep[tails] & keep[indices]
        new_tails = new_id[tails[edge_keep]]
        new_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_tails, minlength=m), out=new_indptr[1:])
        new_indices = new_id[indices[edge_keep]]
        matrix = _scipy_csr_matrix(
            (np.ones(len(new_indices), dtype=np.int8), new_indices, new_indptr),
            shape=(m, m),
        )
        _, labels = _scipy_components(matrix, directed=False)
        vertices = flat.vertices
        members = [vertices[i] for i in sub_dense.tolist()]
        return self._label_groups(members, labels)

    @staticmethod
    def _label_groups(vertices: Sequence[int], labels: np.ndarray) -> List[List[int]]:
        """Scipy component labels -> the canonical grouped form."""
        order = np.argsort(labels, kind="stable")  # ascending ids per label
        boundaries = np.nonzero(np.diff(labels[order]))[0] + 1
        groups = [
            [vertices[i] for i in block.tolist()]
            for block in np.split(order, boundaries)
        ]
        # canonical: each group is already sorted (stable sort over
        # ascending ids); order groups by their smallest member
        groups.sort(key=lambda component: component[0])
        return groups

    # ------------------------------------------------------------------ #
    def _delegate(self, flat: FlatWorkingGraph) -> bool:
        """Whether this snapshot should run on the scalar searches instead."""
        if len(flat.vertices) < self.min_vertices:
            return True
        # scipy's sparse matrices treat explicit zeros as missing edges;
        # zero-weight edges are legal in Graph, so route them to the
        # scalar searches (dial rejects them too and lands on the heap)
        return self._zero_weight(flat)

    @staticmethod
    def _zero_weight(flat: FlatWorkingGraph) -> bool:
        """Cached "does this snapshot carry a zero-weight edge" check."""
        if "has_zero_weight" not in flat.cache:
            weights = flat.weights
            flat.cache["has_zero_weight"] = bool(weights) and min(weights) == 0.0
        return bool(flat.cache["has_zero_weight"])

    def _snapshot_matrix(self, flat: FlatWorkingGraph):
        """The snapshot's weighted scipy CSR matrix, cached on the snapshot."""
        matrix = flat.cache.get(self._MATRIX_CACHE)
        if matrix is None:
            indptr, indices, weights = flat.csr_arrays()
            n = len(flat.vertices)
            matrix = _scipy_csr_matrix((weights, indices, indptr), shape=(n, n))
            flat.cache[self._MATRIX_CACHE] = matrix
        return matrix

    def _distance_rows(
        self, flat: FlatWorkingGraph, sources: Sequence[int]
    ) -> Dict[int, List[float]]:
        """Distance rows for ``sources``, cached on the snapshot.

        The ranking and labelling passes search from the same cut
        vertices; whichever runs first pays for the batched scipy call,
        the second hits the cache.
        """
        cache: Dict[int, List[float]] = flat.cache.setdefault(self._DIST_CACHE, {})  # type: ignore[assignment]
        missing = sorted({int(s) for s in sources if s not in cache})
        if missing:
            # rows the seed searches already hold as arrays just convert
            array_rows: Dict[int, np.ndarray] = flat.cache.get(self._ARRAY_CACHE, {})  # type: ignore[assignment]
            if array_rows:
                for source in [s for s in missing if s in array_rows]:
                    cache[source] = array_rows[source].tolist()
                missing = [s for s in missing if s not in cache]
        if missing:
            if _scipy_dijkstra is not None:
                matrix = self._snapshot_matrix(flat)
                # the snapshot already stores both directions of every
                # undirected edge, so treat it as a (symmetric) digraph
                block = _scipy_dijkstra(matrix, directed=True, indices=missing)
                block = np.atleast_2d(np.asarray(block, dtype=np.float64))
            else:
                block = _numpy_multi_source(flat, missing)
            for source, row in zip(missing, block):
                # plain lists: the flag pass and the label-assembly loops
                # index per element, which is several times faster on
                # lists than on numpy scalars
                cache[source] = row.tolist()
        return cache


def _components_python_masked(
    flat: FlatWorkingGraph, keep: np.ndarray
) -> List[List[int]]:
    """Masked reference component walk over the parent CSR lists.

    Same canonical output as ``_components_python`` over the induced
    subgraph, computed without building it: excluded vertices are simply
    never visited.
    """
    indptr, indices = flat.indptr, flat.indices
    vertices = flat.vertices
    open_ = np.asarray(keep, dtype=bool).tolist()
    n = len(vertices)
    components: List[List[int]] = []
    for start in range(n):  # ascending dense id == ascending original id
        if not open_[start]:
            continue
        open_[start] = False
        stack = [start]
        component = [start]
        while stack:
            v = stack.pop()
            for i in range(indptr[v], indptr[v + 1]):
                w = indices[i]
                if open_[w]:
                    open_[w] = False
                    component.append(w)
                    stack.append(w)
        component.sort()
        components.append([vertices[i] for i in component])
    return components


def _components_python(flat: FlatWorkingGraph) -> List[List[int]]:
    """Reference connected components over the CSR lists (canonical form)."""
    indptr, indices = flat.indptr, flat.indices
    vertices = flat.vertices
    n = len(vertices)
    seen = [False] * n
    components: List[List[int]] = []
    for start in range(n):  # ascending dense id == ascending original id
        if seen[start]:
            continue
        seen[start] = True
        stack = [start]
        component = [start]
        while stack:
            v = stack.pop()
            for i in range(indptr[v], indptr[v + 1]):
                w = indices[i]
                if not seen[w]:
                    seen[w] = True
                    component.append(w)
                    stack.append(w)
        component.sort()
        components.append([vertices[i] for i in component])
    return components


def _numpy_multi_source(flat: FlatWorkingGraph, sources: Sequence[int]) -> np.ndarray:
    """Vectorised Bellman-Ford sweeps (the scipy-free ``csr`` fallback).

    Converges in (longest shortest-path hop count) sweeps of one
    ``np.minimum.at`` scatter each; every relaxation performs the same
    ``dist[u] + w`` float64 addition as Dijkstra, and the fixpoint takes
    the same minima, so the resulting distances are bit-identical.
    """
    indptr, indices, weights = flat.csr_arrays()
    n = len(flat.vertices)
    tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    block = np.full((len(sources), n), INF, dtype=np.float64)
    for row, source in zip(block, sources):
        row[source] = 0.0
        while True:
            previous = row.copy()
            candidates = row[tails] + weights
            np.minimum.at(row, indices, candidates)
            if np.array_equal(row, previous):
                break
    return block


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
_INSTANCES: Dict[str, ShortestPathBackend] = {}

BackendSpec = Union[str, ShortestPathBackend, None]


_BACKEND_FACTORIES = {
    "heap": HeapBackend,
    "csr": CSRBackend,
    "dial": DialBackend,
}


def resolve_backend(spec: BackendSpec = "auto") -> ShortestPathBackend:
    """Map a backend name (or instance, or ``None``) to a backend instance.

    ``"auto"`` (and ``None``) pick ``csr`` when scipy is importable and
    ``dial`` (integer-scalable snapshots on the bucket queue, everything
    else on its heap fallback) otherwise; explicit ``"csr"`` works
    without scipy through the numpy fallback.  Instances pass through
    untouched, so callers can inject a tuned :class:`CSRBackend`
    directly.  Anything that is not a name, an instance, or ``None``
    raises a :class:`TypeError` - a boolean or a number is always a
    caller bug, not a backend choice.
    """
    if isinstance(spec, ShortestPathBackend):
        return spec
    name = check_backend_name("auto" if spec is None else spec)
    if name == "auto":
        name = "csr" if scipy_available() else "dial"
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _BACKEND_FACTORIES[name]()
        _INSTANCES[name] = instance
    return instance


def check_backend_name(name: str) -> str:
    """Validate a backend name without instantiating it (parameter checks).

    Non-string specs (``True``, ``0``, a class, ...) raise a
    :class:`TypeError` naming the offending type instead of falling
    through to the generic unknown-name message.
    """
    if not isinstance(name, str):
        raise TypeError(
            f"shortest-path backend spec must be a string backend name, "
            f"got {type(name).__name__}: {name!r}"
        )
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown shortest-path backend {name!r}; expected one of {BACKEND_NAMES}")
    return name
