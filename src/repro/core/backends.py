"""Pluggable shortest-path backends for HC2L construction.

Construction cost is dominated by single-source searches: one
pruneability-tracking search per cut vertex for the ranking pass
(Equation 6) and again for the labelling pass (Algorithm 5), plus one
plain search per border vertex for the shortcut computation
(Algorithm 3).  The original implementation runs all of them through the
interpreted binary-heap Dijkstra of :mod:`repro.core.pruned_dijkstra` /
:meth:`~repro.core.flat.FlatWorkingGraph.dijkstra`.

:class:`ShortestPathBackend` is the seam between those passes and the
search implementation.  Two backends ship:

``heap``
    The existing pure-Python binary-heap searches, unchanged.  Always
    available; the reference for bit-identical comparisons.

``csr``
    Heap-free searches over the CSR snapshot: distances come from one
    *batched* ``scipy.sparse.csgraph.dijkstra`` call per node (all cut /
    border sources at once, C speed) - or, when scipy is missing, from a
    vectorised numpy Bellman-Ford sweep - and the pruneability flags are
    recovered from the finished distance arrays by the shortest-path-DAG
    pass of :func:`~repro.core.pruned_dijkstra.prune_flags_from_distances`.
    Because the ranking and labelling passes search from the same cut
    vertices, the per-source distance rows are cached on the node's
    :class:`~repro.core.flat.FlatWorkingGraph` snapshot, halving the
    distance work per node.  Both Dijkstra variants perform the same
    ``dist[u] + w`` float64 relaxations, so distances - and therefore
    labels - are bit-identical to the heap backend (asserted by the
    backend-equivalence tests).

Tiny subgraphs (the bulk of the recursion's nodes by count, not by cost)
are delegated to the heap searches even under ``csr``: below a few dozen
vertices the per-call overhead of building a scipy matrix outweighs the
heap loop.  Since both produce identical results, mixing is safe.

``resolve_backend`` maps the ``"auto"`` / ``"heap"`` / ``"csr"`` names
used by :class:`~repro.core.index.HC2LParameters` and the CLI's
``repro build --backend`` to backend instances; ``auto`` picks ``csr``
when scipy is importable and ``heap`` otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.flat import FlatWorkingGraph
from repro.core.pruned_dijkstra import dist_and_prune_dense, prune_flags_from_distances

INF = float("inf")

BACKEND_NAMES = ("auto", "heap", "csr")

try:  # pragma: no cover - exercised via whichever env runs the suite
    from scipy.sparse import csr_matrix as _scipy_csr_matrix
    from scipy.sparse.csgraph import connected_components as _scipy_components
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra
except ImportError:  # pragma: no cover
    _scipy_csr_matrix = None
    _scipy_components = None
    _scipy_dijkstra = None


def scipy_available() -> bool:
    """Whether the scipy csgraph routines can back the ``csr`` backend."""
    return _scipy_dijkstra is not None


class ShortestPathBackend:
    """Interface of a construction-side shortest-path implementation.

    All vertex ids are dense local ids of the ``flat`` snapshot; distance
    rows cover every vertex of the snapshot with ``inf`` for unreached
    ones.  Implementations must return distances bit-identical to the
    heap Dijkstra (same float64 relaxations), which makes backends freely
    interchangeable mid-build.
    """

    name: str = "abstract"

    #: max-flow implementation the partition layer's balanced cuts should
    #: use: ``"dinitz"`` (the reference pure-Python solver) or ``"matrix"``
    #: (scipy ``maximum_flow`` / numpy Edmonds-Karp over edge arrays).  The
    #: canonical minimum vertex cuts are unique across all maximum flows,
    #: so the choice never changes a cut - only how fast it is found.
    flow_method: str = "dinitz"

    def sssp_many(self, flat: FlatWorkingGraph, sources: Sequence[int]) -> List[Sequence[float]]:
        """Single-source distance rows for a batch of sources."""
        raise NotImplementedError

    def components(self, flat: FlatWorkingGraph) -> List[List[int]]:
        """Connected components of a snapshot, in canonical form.

        Each component is a sorted list of *original* vertex ids and the
        components are ordered by their smallest member - exactly the
        output contract of
        :func:`repro.graph.components.components_of_adjacency`, so the
        partition layer can swap between the dict walk and the backend
        without changing a single tie-break.
        """
        return _components_python(flat)

    def dist_and_prune_many(
        self,
        flat: FlatWorkingGraph,
        roots: Sequence[int],
        prune_sets: Sequence[Sequence[int]],
    ) -> Tuple[List[Sequence[float]], List[Sequence[bool]]]:
        """Distances + Algorithm 4 pruneability flags for a batch of roots.

        ``prune_sets[i]`` is the prune set of ``roots[i]`` (the ranking
        pass prunes against every other cut vertex, the labelling pass
        against the earlier-ranked prefix).
        """
        raise NotImplementedError


class HeapBackend(ShortestPathBackend):
    """The pure-Python binary-heap searches (always available)."""

    name = "heap"

    def sssp_many(self, flat: FlatWorkingGraph, sources: Sequence[int]) -> List[Sequence[float]]:
        return [flat.dijkstra(source) for source in sources]

    def dist_and_prune_many(
        self,
        flat: FlatWorkingGraph,
        roots: Sequence[int],
        prune_sets: Sequence[Sequence[int]],
    ) -> Tuple[List[Sequence[float]], List[Sequence[bool]]]:
        dists: List[Sequence[float]] = []
        prunes: List[Sequence[bool]] = []
        for root, prune_ids in zip(roots, prune_sets):
            d, p = dist_and_prune_dense(flat, root, prune_ids)
            dists.append(d)
            prunes.append(p)
        return dists, prunes


class CSRBackend(ShortestPathBackend):
    """Heap-free searches over the CSR snapshot (scipy or numpy).

    Parameters
    ----------
    min_vertices:
        Snapshots smaller than this are delegated to the heap backend -
        the fixed per-call cost of assembling a scipy matrix dominates on
        the recursion's many tiny leaf nodes.  Results are identical
        either way.
    """

    name = "csr"
    flow_method = "matrix"

    _DIST_CACHE = "csr_dist_rows"
    _MATRIX_CACHE = "csr_matrix"

    def __init__(self, min_vertices: int = 32, components_min_vertices: int = 2048) -> None:
        self.min_vertices = min_vertices
        # the component scan crosses over much later than the distance
        # searches: one O(E) python BFS beats a scipy matrix round-trip
        # until the snapshot is a few thousand vertices
        self.components_min_vertices = components_min_vertices
        self._heap = HeapBackend()

    # ------------------------------------------------------------------ #
    def sssp_many(self, flat: FlatWorkingGraph, sources: Sequence[int]) -> List[Sequence[float]]:
        if self._delegate(flat):
            return self._heap.sssp_many(flat, sources)
        rows = self._distance_rows(flat, sources)
        return [rows[source] for source in sources]

    def dist_and_prune_many(
        self,
        flat: FlatWorkingGraph,
        roots: Sequence[int],
        prune_sets: Sequence[Sequence[int]],
    ) -> Tuple[List[Sequence[float]], List[Sequence[bool]]]:
        if self._delegate(flat):
            return self._heap.dist_and_prune_many(flat, roots, prune_sets)
        rows = self._distance_rows(flat, roots)
        dists: List[Sequence[float]] = []
        prunes: List[Sequence[bool]] = []
        for root, prune_ids in zip(roots, prune_sets):
            dist = rows[root]
            dists.append(dist)
            prunes.append(prune_flags_from_distances(flat, root, prune_ids, dist))
        return dists, prunes

    def components(self, flat: FlatWorkingGraph) -> List[List[int]]:
        if (
            _scipy_components is None
            or _scipy_csr_matrix is None
            or len(flat.vertices) < self.components_min_vertices
        ):
            return _components_python(flat)
        indptr, indices, weights = flat.csr_arrays()
        n = len(flat.vertices)
        # weights play no role in connectivity; a ones data array also
        # sidesteps scipy's explicit-zero == missing-edge convention
        matrix = _scipy_csr_matrix(
            (np.ones(len(indices), dtype=np.int8), indices, indptr), shape=(n, n)
        )
        _, labels = _scipy_components(matrix, directed=False)
        order = np.argsort(labels, kind="stable")  # dense ids ascending per label
        boundaries = np.nonzero(np.diff(labels[order]))[0] + 1
        vertices = flat.vertices
        groups = [
            [vertices[i] for i in block.tolist()]
            for block in np.split(order, boundaries)
        ]
        # canonical: each group is already sorted (stable sort over
        # ascending dense ids); order groups by their smallest member
        groups.sort(key=lambda component: component[0])
        return groups

    # ------------------------------------------------------------------ #
    def _delegate(self, flat: FlatWorkingGraph) -> bool:
        """Whether this snapshot should run on the heap searches instead."""
        if len(flat.vertices) < self.min_vertices:
            return True
        # scipy's sparse matrices treat explicit zeros as missing edges;
        # zero-weight edges are legal in Graph, so route them to the heap
        if "has_zero_weight" not in flat.cache:
            weights = flat.weights
            flat.cache["has_zero_weight"] = bool(weights) and min(weights) == 0.0
        return bool(flat.cache["has_zero_weight"])

    def _distance_rows(
        self, flat: FlatWorkingGraph, sources: Sequence[int]
    ) -> Dict[int, List[float]]:
        """Distance rows for ``sources``, cached on the snapshot.

        The ranking and labelling passes search from the same cut
        vertices; whichever runs first pays for the batched scipy call,
        the second hits the cache.
        """
        cache: Dict[int, List[float]] = flat.cache.setdefault(self._DIST_CACHE, {})  # type: ignore[assignment]
        missing = sorted({int(s) for s in sources if s not in cache})
        if missing:
            if _scipy_dijkstra is not None:
                matrix = flat.cache.get(self._MATRIX_CACHE)
                if matrix is None:
                    indptr, indices, weights = flat.csr_arrays()
                    n = len(flat.vertices)
                    matrix = _scipy_csr_matrix((weights, indices, indptr), shape=(n, n))
                    flat.cache[self._MATRIX_CACHE] = matrix
                # the snapshot already stores both directions of every
                # undirected edge, so treat it as a (symmetric) digraph
                block = _scipy_dijkstra(matrix, directed=True, indices=missing)
                block = np.atleast_2d(np.asarray(block, dtype=np.float64))
            else:
                block = _numpy_multi_source(flat, missing)
            for source, row in zip(missing, block):
                # plain lists: the flag pass and the label-assembly loops
                # index per element, which is several times faster on
                # lists than on numpy scalars
                cache[source] = row.tolist()
        return cache


def _components_python(flat: FlatWorkingGraph) -> List[List[int]]:
    """Reference connected components over the CSR lists (canonical form)."""
    indptr, indices = flat.indptr, flat.indices
    vertices = flat.vertices
    n = len(vertices)
    seen = [False] * n
    components: List[List[int]] = []
    for start in range(n):  # ascending dense id == ascending original id
        if seen[start]:
            continue
        seen[start] = True
        stack = [start]
        component = [start]
        while stack:
            v = stack.pop()
            for i in range(indptr[v], indptr[v + 1]):
                w = indices[i]
                if not seen[w]:
                    seen[w] = True
                    component.append(w)
                    stack.append(w)
        component.sort()
        components.append([vertices[i] for i in component])
    return components


def _numpy_multi_source(flat: FlatWorkingGraph, sources: Sequence[int]) -> np.ndarray:
    """Vectorised Bellman-Ford sweeps (the scipy-free ``csr`` fallback).

    Converges in (longest shortest-path hop count) sweeps of one
    ``np.minimum.at`` scatter each; every relaxation performs the same
    ``dist[u] + w`` float64 addition as Dijkstra, and the fixpoint takes
    the same minima, so the resulting distances are bit-identical.
    """
    indptr, indices, weights = flat.csr_arrays()
    n = len(flat.vertices)
    tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    block = np.full((len(sources), n), INF, dtype=np.float64)
    for row, source in zip(block, sources):
        row[source] = 0.0
        while True:
            previous = row.copy()
            candidates = row[tails] + weights
            np.minimum.at(row, indices, candidates)
            if np.array_equal(row, previous):
                break
    return block


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
_INSTANCES: Dict[str, ShortestPathBackend] = {}

BackendSpec = Union[str, ShortestPathBackend, None]


def resolve_backend(spec: BackendSpec = "auto") -> ShortestPathBackend:
    """Map a backend name (or instance, or ``None``) to a backend instance.

    ``"auto"`` (and ``None``) pick ``csr`` when scipy is importable and
    ``heap`` otherwise; explicit ``"csr"`` works without scipy through the
    numpy fallback.  Instances pass through untouched, so callers can
    inject a tuned :class:`CSRBackend` directly.
    """
    if isinstance(spec, ShortestPathBackend):
        return spec
    name = check_backend_name("auto" if spec is None else str(spec))
    if name == "auto":
        name = "csr" if scipy_available() else "heap"
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = HeapBackend() if name == "heap" else CSRBackend()
        _INSTANCES[name] = instance
    return instance


def check_backend_name(name: str) -> str:
    """Validate a backend name without instantiating it (parameter checks)."""
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown shortest-path backend {name!r}; expected one of {BACKEND_NAMES}")
    return name
