"""Hierarchical cut 2-hop labels (Section 4.2).

The labelling assigns every vertex one *distance array per ancestor cut*
in the balanced tree hierarchy.  Within an array, positions follow the
per-node rank order of the cut vertices; only the distance values are
stored (no hub identifiers), which halves the storage compared to generic
2-hop labels.  Tail pruning (Algorithm 5) truncates each array to the
prefix required for correctness.

This module holds

* :func:`node_distance_arrays` - Algorithm 5 for a single tree node
  (both the tail-pruned and the naive variant used as the upper bound of
  Section 4.2.1), and
* :class:`HC2LLabelling` - the per-vertex container plus size metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.flat import FlatWorkingGraph
from repro.core.pruned_dijkstra import dist_and_prune_dense
from repro.core.ranking import CutRanking
from repro.partition.working_graph import WorkingAdjacency

INF = float("inf")


def node_distance_arrays(
    adjacency: WorkingAdjacency,
    ranking: CutRanking,
    tail_pruning: bool = True,
    flat: "FlatWorkingGraph | None" = None,
) -> Tuple[Dict[int, List[float]], Dict[int, Mapping[int, float]]]:
    """Compute the per-vertex distance arrays for one tree node (Algorithm 5).

    Parameters
    ----------
    adjacency:
        Working adjacency of the node's (distance-preserving) subgraph.
    ranking:
        The ranked cut vertices of the node (Equation 6 order).
    tail_pruning:
        When ``False`` the full (naive) arrays are kept; this is the upper
        bound labelling of Section 4.2.1 used by the ablation benchmark.
    flat:
        Optional pre-built CSR snapshot of ``adjacency`` (the construction
        builds one per node and shares it with the ranking pass).

    Returns
    -------
    (arrays, cut_distances)
        ``arrays`` maps every vertex of the subgraph to its (possibly
        tail-pruned) distance array for this node.  ``cut_distances`` maps
        each cut vertex to its full single-source distance map, which the
        shortcut computation (Algorithm 3) reuses.
    """
    ordered_cut = ranking.ordered
    if not ordered_cut:
        return {v: [] for v in adjacency.keys()}, {}

    # One CSR snapshot shared by all |cut| searches of this node.
    if flat is None:
        flat = FlatWorkingGraph(adjacency)
    cut_dense = flat.dense_ids(ordered_cut)
    dists: List[List[float]] = []
    prunes: List[List[bool]] = []
    for i, cut_id in enumerate(cut_dense):
        d, p = dist_and_prune_dense(flat, cut_id, cut_dense[:i])
        dists.append(d)
        prunes.append(p)

    vertices = flat.vertices
    cut_distances: Dict[int, Mapping[int, float]] = {
        ordered_cut[i]: {
            vertices[j]: d for j, d in enumerate(dists[i]) if d != INF
        }
        for i in range(len(ordered_cut))
    }

    num_searches = len(cut_dense)
    arrays: Dict[int, List[float]] = {}
    for j, v in enumerate(vertices):
        if tail_pruning:
            keep = 0
            for i in range(num_searches):
                if not prunes[i][j]:
                    keep = i
            length = keep + 1
        else:
            length = num_searches
        arrays[v] = [dists[i][j] for i in range(length)]
    return arrays, cut_distances


@dataclass
class HC2LLabelling:
    """Per-vertex hierarchical cut 2-hop labels.

    ``labels[v]`` is a list of distance arrays, one per level of the
    root-to-node path of ``v`` in the hierarchy (index = node depth).
    """

    num_vertices: int
    labels: List[List[List[float]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.labels:
            self.labels = [[] for _ in range(self.num_vertices)]

    def append_level(self, vertex: int, array: Sequence[float]) -> None:
        """Append the distance array of the next level for ``vertex``."""
        self.labels[vertex].append(list(array))

    def level_array(self, vertex: int, depth: int) -> List[float]:
        """Distance array of ``vertex`` at hierarchy depth ``depth``."""
        return self.labels[vertex][depth]

    def num_levels(self, vertex: int) -> int:
        """Number of levels stored for ``vertex`` (= node depth + 1)."""
        return len(self.labels[vertex])

    # ------------------------------------------------------------------ #
    # size metrics (Tables 2-4)
    # ------------------------------------------------------------------ #
    def total_entries(self) -> int:
        """Total number of stored distance values."""
        return sum(len(array) for levels in self.labels for array in levels)

    def entries_of(self, vertex: int) -> int:
        """Number of distance values stored for one vertex."""
        return sum(len(array) for array in self.labels[vertex])

    def size_bytes(self) -> int:
        """Approximate labelling size in bytes.

        Each distance value costs 8 bytes; each per-level array carries a
        2-byte length prefix; each vertex carries an 8-byte offset into the
        label storage.  Hub identifiers are *not* stored (Section 4.2.2).
        """
        entries = self.total_entries()
        level_overhead = sum(len(levels) * 2 for levels in self.labels)
        return entries * 8 + level_overhead + 8 * self.num_vertices

    def average_label_entries(self) -> float:
        """Mean number of stored distance values per vertex."""
        if self.num_vertices == 0:
            return 0.0
        return self.total_entries() / self.num_vertices

    def max_label_entries(self) -> int:
        """Largest per-vertex label, in distance values."""
        if self.num_vertices == 0:
            return 0
        return max(self.entries_of(v) for v in range(self.num_vertices))
