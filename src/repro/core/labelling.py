"""Hierarchical cut 2-hop labels (Section 4.2).

The labelling assigns every vertex one *distance array per ancestor cut*
in the balanced tree hierarchy.  Within an array, positions follow the
per-node rank order of the cut vertices; only the distance values are
stored (no hub identifiers), which halves the storage compared to generic
2-hop labels.  Tail pruning (Algorithm 5) truncates each array to the
prefix required for correctness.

This module holds

* :func:`node_distance_arrays` - Algorithm 5 for a single tree node
  (both the tail-pruned and the naive variant used as the upper bound of
  Section 4.2.1), and
* :class:`HC2LLabelling` - the per-vertex container plus size metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.backends import BackendSpec, resolve_backend
from repro.core.flat import FlatWorkingGraph
from repro.core.ranking import CutRanking
from repro.partition.working_graph import WorkingAdjacency

INF = float("inf")


def node_distance_arrays(
    adjacency: "WorkingAdjacency | None",
    ranking: CutRanking,
    tail_pruning: bool = True,
    flat: "FlatWorkingGraph | None" = None,
    backend: BackendSpec = None,
) -> Tuple[Dict[int, List[float]], Dict[int, Mapping[int, float]]]:
    """Compute the per-vertex distance arrays for one tree node (Algorithm 5).

    Parameters
    ----------
    adjacency:
        Working adjacency of the node's (distance-preserving) subgraph.
        May be ``None`` when a pre-built CSR snapshot is passed as
        ``flat`` (the dict-free construction path never materialises the
        dict form).
    ranking:
        The ranked cut vertices of the node (Equation 6 order).
    tail_pruning:
        When ``False`` the full (naive) arrays are kept; this is the upper
        bound labelling of Section 4.2.1 used by the ablation benchmark.
    flat:
        Optional pre-built CSR snapshot of ``adjacency`` (the construction
        builds one per node and shares it with the ranking pass).
    backend:
        The :class:`~repro.core.backends.ShortestPathBackend` running the
        per-cut-vertex searches (name, instance, or ``None`` for the
        default).

    Returns
    -------
    (arrays, cut_distances)
        ``arrays`` maps every vertex of the subgraph to its (possibly
        tail-pruned) distance array for this node.  ``cut_distances`` maps
        each cut vertex to its full single-source distance map, which the
        shortcut computation (Algorithm 3) reuses.
    """
    if adjacency is None and flat is None:
        raise ValueError("provide the subgraph as 'adjacency' or 'flat'")
    ordered_cut = ranking.ordered
    if not ordered_cut:
        vertices = flat.vertices if adjacency is None else list(adjacency.keys())
        return {v: [] for v in vertices}, {}

    # One CSR snapshot shared by all |cut| searches of this node.
    if flat is None:
        flat = FlatWorkingGraph(adjacency)
    search = resolve_backend(backend)
    cut_dense = flat.dense_ids(ordered_cut)
    prune_sets = [cut_dense[:i] for i in range(len(cut_dense))]
    dists, prunes = search.dist_and_prune_many(flat, cut_dense, prune_sets)

    vertices = flat.vertices
    num_searches = len(cut_dense)
    dist_matrix = np.asarray(dists, dtype=np.float64)
    cut_distances: Dict[int, Mapping[int, float]] = {}
    for i, cut_vertex in enumerate(ordered_cut):
        row = dist_matrix[i].tolist()
        reached = np.nonzero(np.isfinite(dist_matrix[i]))[0].tolist()
        cut_distances[cut_vertex] = {vertices[j]: row[j] for j in reached}

    # Tail pruning (Definition 4.18): keep, per vertex, the prefix up to
    # the last search whose shortest path does NOT run through an
    # earlier-ranked cut vertex.  Vectorised over the (search, vertex)
    # flag matrix; the values extracted are exactly the search distances,
    # so the arrays are bit-identical to the per-pair assembly.
    if tail_pruning:
        not_pruned = ~np.asarray(prunes, dtype=bool)
        any_kept = not_pruned.any(axis=0)
        keep = np.where(
            any_kept, num_searches - 1 - np.argmax(not_pruned[::-1, :], axis=0), 0
        )
        lengths = (keep + 1).tolist()
    else:
        lengths = [num_searches] * len(vertices)

    arrays: Dict[int, List[float]] = {
        v: dist_matrix[: lengths[j], j].tolist() for j, v in enumerate(vertices)
    }
    return arrays, cut_distances


@dataclass
class HC2LLabelling:
    """Per-vertex hierarchical cut 2-hop labels.

    ``labels[v]`` is a list of distance arrays, one per level of the
    root-to-node path of ``v`` in the hierarchy (index = node depth).
    """

    num_vertices: int
    labels: List[List[List[float]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.labels:
            self.labels = [[] for _ in range(self.num_vertices)]

    def append_level(self, vertex: int, array: Sequence[float]) -> None:
        """Append the distance array of the next level for ``vertex``."""
        self.labels[vertex].append(list(array))

    def level_array(self, vertex: int, depth: int) -> List[float]:
        """Distance array of ``vertex`` at hierarchy depth ``depth``."""
        return self.labels[vertex][depth]

    def num_levels(self, vertex: int) -> int:
        """Number of levels stored for ``vertex`` (= node depth + 1)."""
        return len(self.labels[vertex])

    # ------------------------------------------------------------------ #
    # size metrics (Tables 2-4)
    # ------------------------------------------------------------------ #
    def total_entries(self) -> int:
        """Total number of stored distance values."""
        return sum(len(array) for levels in self.labels for array in levels)

    def entries_of(self, vertex: int) -> int:
        """Number of distance values stored for one vertex."""
        return sum(len(array) for array in self.labels[vertex])

    def size_bytes(self) -> int:
        """Approximate labelling size in bytes.

        Each distance value costs 8 bytes; each per-level array carries a
        2-byte length prefix; each vertex carries an 8-byte offset into the
        label storage.  Hub identifiers are *not* stored (Section 4.2.2).
        """
        entries = self.total_entries()
        level_overhead = sum(len(levels) * 2 for levels in self.labels)
        return entries * 8 + level_overhead + 8 * self.num_vertices

    def average_label_entries(self) -> float:
        """Mean number of stored distance values per vertex."""
        if self.num_vertices == 0:
            return 0.0
        return self.total_entries() / self.num_vertices

    def max_label_entries(self) -> int:
        """Largest per-vertex label, in distance values."""
        if self.num_vertices == 0:
            return 0
        return max(self.entries_of(v) for v in range(self.num_vertices))
