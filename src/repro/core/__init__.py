"""Hierarchical Cut 2-Hop Labelling (HC2L) - the paper's core contribution.

Public entry point is :class:`repro.core.index.HC2LIndex`, which bundles

* degree-one contraction of the input graph,
* construction of the balanced tree hierarchy (Section 4.1),
* the tail-pruned hierarchical cut 2-hop labelling (Section 4.2), and
* O(1)-LCA query processing (Section 4.3),

plus the parallel construction variant HC2L_p (Section 4.4).
"""

from repro.core.backends import (
    CSRBackend,
    HeapBackend,
    ShortestPathBackend,
    resolve_backend,
    scipy_available,
)
from repro.core.index import HC2LIndex, HC2LParameters
from repro.core.labelling import HC2LLabelling
from repro.core.construction import HC2LBuilder, ConstructionStats
from repro.core.oracle import BatchMixin, DistanceOracle
from repro.core.parallel import ParallelHC2LBuilder

__all__ = [
    "HC2LIndex",
    "HC2LParameters",
    "HC2LLabelling",
    "HC2LBuilder",
    "ParallelHC2LBuilder",
    "ConstructionStats",
    "DistanceOracle",
    "BatchMixin",
    "ShortestPathBackend",
    "HeapBackend",
    "CSRBackend",
    "resolve_backend",
    "scipy_available",
]
