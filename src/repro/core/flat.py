"""Flat, contiguous storage for HC2L labels and working subgraphs.

The paper's C++ implementation owes much of its query speed to the label
layout: per-vertex distance arrays are contiguous ``double`` buffers with
no hub identifiers, so a query is a linear scan over two cache-resident
slabs.  The original reproduction stored labels as nested Python lists
(``List[List[List[float]]]``), which scatters every distance value behind
three pointer indirections.  This module provides the flat counterparts:

* :class:`FlatLabelling` - all per-vertex, per-level distance arrays
  packed into a single ``float64`` buffer plus two integer index arrays,
  with a lossless round-trip from/to :class:`~repro.core.labelling.HC2LLabelling`.
  It is the storage backend the batch :class:`~repro.core.engine.QueryEngine`
  vectorises over and the payload of the versioned on-disk format.
  A labelling is also a *composable partition*: :meth:`FlatLabelling.slice_vertices`
  carves out a self-contained labelling for a contiguous vertex range
  (re-based index arrays, same dtype contracts), :meth:`FlatLabelling.partition`
  splits along a boundary sequence, and :meth:`FlatLabelling.concat` is the
  lossless inverse - the basis of the sharded on-disk layout
  (:func:`repro.core.persistence.save_index_sharded`) and the
  :class:`~repro.serving.shards.ShardRouter`.
* :class:`FlatWorkingGraph` - a CSR snapshot of a construction-time
  working adjacency with dense local ids, shared by the per-cut-vertex
  Dijkstra searches of the ranking and labelling passes (which repeatedly
  traverse the same subgraph).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (labelling imports us)
    from repro.core.labelling import HC2LLabelling

#: dict-of-dicts adjacency keyed by original vertex ids.  Defined here (not
#: imported from :mod:`repro.partition.working_graph`) so the partition layer
#: can import the CSR snapshot without a circular dependency.
WorkingAdjacency = Dict[int, Dict[int, float]]

INF = float("inf")


def _as_contiguous(array, dtype) -> np.ndarray:
    """A C-contiguous array of ``dtype``, preserving conforming inputs.

    Unlike ``np.ascontiguousarray`` this keeps ndarray subclasses - in
    particular the read-only ``np.memmap`` buffers of an mmap-loaded index
    (see :mod:`repro.serving.mmap`) - instead of silently reboxing them.
    """
    result = np.asanyarray(array)
    if result.dtype != dtype or not result.flags.c_contiguous:
        result = np.ascontiguousarray(result, dtype=dtype)
    return result


class FlatLabelling:
    """HC2L labels packed into one contiguous distance buffer.

    Layout
    ------
    ``values``
        One ``float64`` array holding every stored distance.  The arrays of
        one vertex are contiguous, ordered by hierarchy depth.
    ``level_indptr``
        ``int64`` array; the distance array of *global level* ``k`` (see
        below) is ``values[level_indptr[k]:level_indptr[k + 1]]``.
    ``vertex_indptr``
        ``int64`` array of length ``num_vertices + 1``; vertex ``v`` owns
        global levels ``vertex_indptr[v] .. vertex_indptr[v + 1] - 1``, one
        per hierarchy depth starting at depth 0.

    The array of ``(v, depth)`` therefore starts at
    ``level_indptr[vertex_indptr[v] + depth]``.  This mirrors the storage
    model the paper costs out in Section 4.2.2 (values + per-array length
    + per-vertex offset, no hub ids).
    """

    __slots__ = ("num_vertices", "values", "level_indptr", "vertex_indptr")

    def __init__(
        self,
        num_vertices: int,
        values: np.ndarray,
        level_indptr: np.ndarray,
        vertex_indptr: np.ndarray,
    ) -> None:
        if len(vertex_indptr) != num_vertices + 1:
            raise ValueError(
                f"vertex_indptr must have num_vertices + 1 entries, "
                f"got {len(vertex_indptr)} for {num_vertices} vertices"
            )
        self.num_vertices = num_vertices
        self.values = _as_contiguous(values, np.float64)
        self.level_indptr = _as_contiguous(level_indptr, np.int64)
        self.vertex_indptr = _as_contiguous(vertex_indptr, np.int64)
        for name in ("values", "level_indptr", "vertex_indptr"):
            buffer = getattr(self, name)
            if isinstance(buffer, np.memmap) and buffer.flags.writeable:
                raise ValueError(
                    f"{name} is a writable memory map; label buffers shared "
                    f"between serving processes must be mapped read-only "
                    f"(mmap_mode='r') so no shard can mutate shared pages"
                )

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_labelling(cls, labelling: "HC2LLabelling") -> "FlatLabelling":
        """Pack a nested :class:`HC2LLabelling` into flat buffers (lossless)."""
        n = labelling.num_vertices
        vertex_indptr = np.empty(n + 1, dtype=np.int64)
        vertex_indptr[0] = 0
        lengths: List[int] = []
        for v, levels in enumerate(labelling.labels):
            for array in levels:
                lengths.append(len(array))
            vertex_indptr[v + 1] = len(lengths)
        level_indptr = np.zeros(len(lengths) + 1, dtype=np.int64)
        level_indptr[1:] = np.cumsum(np.asarray(lengths, dtype=np.int64))
        values = np.empty(int(level_indptr[-1]), dtype=np.float64)
        position = 0
        for levels in labelling.labels:
            for array in levels:
                values[position : position + len(array)] = array
                position += len(array)
        return cls(n, values, level_indptr, vertex_indptr)

    def to_labelling(self) -> "HC2LLabelling":
        """Unpack into the nested list representation (lossless round-trip)."""
        from repro.core.labelling import HC2LLabelling

        values = self.values.tolist()
        level_indptr = self.level_indptr.tolist()
        vertex_indptr = self.vertex_indptr.tolist()
        labels: List[List[List[float]]] = []
        for v in range(self.num_vertices):
            levels: List[List[float]] = []
            for k in range(vertex_indptr[v], vertex_indptr[v + 1]):
                levels.append(values[level_indptr[k] : level_indptr[k + 1]])
            labels.append(levels)
        return HC2LLabelling(num_vertices=self.num_vertices, labels=labels)

    # ------------------------------------------------------------------ #
    # partitioning (the basis of the sharded store)
    # ------------------------------------------------------------------ #
    def slice_vertices(self, lo: int, hi: int) -> "FlatLabelling":
        """A self-contained labelling for the vertex range ``[lo, hi)``.

        The returned labelling owns vertices ``0 .. hi - lo - 1`` (local
        ids ``v - lo``) with *re-based* ``vertex_indptr`` / ``level_indptr``
        and the same dtype contracts as the parent, so it round-trips
        through :meth:`concat` and serves as an independent shard payload.
        ``values`` is a zero-copy view of the parent buffer (still a
        read-only memmap when the parent is mmap-loaded); the index arrays
        are small re-based copies.
        """
        if not 0 <= lo <= hi <= self.num_vertices:
            raise ValueError(
                f"invalid vertex range [{lo}, {hi}) for a labelling over "
                f"{self.num_vertices} vertices"
            )
        k_lo = int(self.vertex_indptr[lo])
        k_hi = int(self.vertex_indptr[hi])
        value_lo = int(self.level_indptr[k_lo])
        value_hi = int(self.level_indptr[k_hi])
        # np.asarray drops any (fake) memmap wrapper the subtraction would
        # otherwise produce; the re-based indptrs are plain owned arrays
        vertex_indptr = np.asarray(self.vertex_indptr[lo : hi + 1], dtype=np.int64) - k_lo
        level_indptr = np.asarray(self.level_indptr[k_lo : k_hi + 1], dtype=np.int64) - value_lo
        return FlatLabelling(
            num_vertices=hi - lo,
            values=self.values[value_lo:value_hi],
            level_indptr=level_indptr,
            vertex_indptr=vertex_indptr,
        )

    def partition(self, boundaries: Sequence[int]) -> List["FlatLabelling"]:
        """Split into per-range labellings along ``boundaries``.

        ``boundaries`` is the full monotone edge sequence
        ``[0, b_1, ..., num_vertices]`` (``len(boundaries) - 1`` shards);
        shard ``k`` covers vertices ``boundaries[k] .. boundaries[k+1] - 1``.
        ``concat(partition(boundaries))`` reproduces the labelling exactly.
        """
        edges = [int(b) for b in boundaries]
        if len(edges) < 2 or edges[0] != 0 or edges[-1] != self.num_vertices:
            raise ValueError(
                f"boundaries must run from 0 to num_vertices "
                f"({self.num_vertices}), got {edges}"
            )
        if any(a > b for a, b in zip(edges, edges[1:])):
            raise ValueError(f"boundaries must be non-decreasing, got {edges}")
        return [self.slice_vertices(lo, hi) for lo, hi in zip(edges, edges[1:])]

    @classmethod
    def concat(cls, parts: Sequence["FlatLabelling"]) -> "FlatLabelling":
        """Concatenate per-range labellings back into one (inverse of
        :meth:`partition`; lossless for any partition of the vertex range).
        """
        if not parts:
            return cls(0, np.empty(0, np.float64), np.zeros(1, np.int64), np.zeros(1, np.int64))
        num_vertices = sum(part.num_vertices for part in parts)
        values = np.concatenate([part.values for part in parts])
        vertex_indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        total_levels = sum(len(part.level_indptr) - 1 for part in parts)
        level_indptr = np.zeros(total_levels + 1, dtype=np.int64)
        vertex_at = 0
        level_at = 0
        value_base = 0
        for part in parts:
            num_local = part.num_vertices
            vertex_indptr[vertex_at + 1 : vertex_at + num_local + 1] = (
                part.vertex_indptr[1:] + level_at
            )
            num_levels = len(part.level_indptr) - 1
            level_indptr[level_at + 1 : level_at + num_levels + 1] = (
                part.level_indptr[1:] + value_base
            )
            vertex_at += num_local
            level_at += num_levels
            value_base += int(part.level_indptr[-1])
        return cls(num_vertices, values, level_indptr, vertex_indptr)

    def merge_levels(self, other: "FlatLabelling") -> "FlatLabelling":
        """Concatenate two labellings *per vertex*: my levels, then ``other``'s.

        Both labellings must cover the same vertices in the same order; the
        result stores, for every vertex, first all levels of ``self`` and
        then all levels of ``other``.  This is how the process-parallel
        construction combines the ancestor-level prefix a subtree inherited
        from the nodes above it with the label fragment the subtree worker
        produced - entirely with vectorised gathers, level arrays stay
        byte-identical.
        """
        if self.num_vertices != other.num_vertices:
            raise ValueError(
                f"cannot merge labellings over {self.num_vertices} and "
                f"{other.num_vertices} vertices"
            )
        n = self.num_vertices
        counts_a = self.vertex_indptr[1:] - self.vertex_indptr[:-1]
        counts_b = other.vertex_indptr[1:] - other.vertex_indptr[:-1]
        new_vertex_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts_a + counts_b, out=new_vertex_indptr[1:])
        total_a = int(self.vertex_indptr[-1])
        total_b = int(other.vertex_indptr[-1])
        total_levels = total_a + total_b
        # destination of every source level: a-levels lead, b-levels follow
        dst_a = np.repeat(new_vertex_indptr[:-1], counts_a) + (
            np.arange(total_a, dtype=np.int64) - np.repeat(self.vertex_indptr[:-1], counts_a)
        )
        dst_b = np.repeat(new_vertex_indptr[:-1] + counts_a, counts_b) + (
            np.arange(total_b, dtype=np.int64) - np.repeat(other.vertex_indptr[:-1], counts_b)
        )
        src = np.empty(total_levels, dtype=np.int64)
        src[dst_a] = np.arange(total_a, dtype=np.int64)
        src[dst_b] = total_a + np.arange(total_b, dtype=np.int64)
        # gather lengths/starts from the virtual [self.values, other.values] buffer
        lengths = np.concatenate([np.diff(self.level_indptr), np.diff(other.level_indptr)])[src]
        starts = np.concatenate(
            [self.level_indptr[:-1], other.level_indptr[:-1] + self.values.shape[0]]
        )[src]
        new_level_indptr = np.zeros(total_levels + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_level_indptr[1:])
        total_values = int(new_level_indptr[-1])
        value_within = np.arange(total_values, dtype=np.int64) - np.repeat(
            new_level_indptr[:-1], lengths
        )
        values = np.concatenate([self.values, other.values])[
            np.repeat(starts, lengths) + value_within
        ]
        return FlatLabelling(
            num_vertices=n,
            values=values,
            level_indptr=new_level_indptr,
            vertex_indptr=new_vertex_indptr,
        )

    @staticmethod
    def even_boundaries(num_vertices: int, num_shards: int) -> List[int]:
        """The edge sequence of an (almost) even ``num_shards``-way split."""
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        return [round(k * num_vertices / num_shards) for k in range(num_shards + 1)]

    def reorder(self, order: Sequence[int]) -> "FlatLabelling":
        """A labelling whose position ``p`` holds the labels of vertex ``order[p]``.

        ``order`` must be a permutation of ``0 .. num_vertices - 1``.  The
        per-vertex level arrays are byte-identical, only their placement in
        the buffers changes - this is how the hierarchy-aligned sharded
        layout stores labels in subtree (DFS) order so that shard ranges
        follow the hierarchy's top cuts.  ``reorder(order)`` followed by
        ``reorder(inverse)`` round-trips exactly.
        """
        order_array = np.asarray(order, dtype=np.int64)
        n = self.num_vertices
        if len(order_array) != n or not np.array_equal(
            np.sort(order_array), np.arange(n, dtype=np.int64)
        ):
            raise ValueError(
                f"order must be a permutation of 0..{n - 1}, got {len(order_array)} entries"
            )
        vertex_indptr = self.vertex_indptr
        level_indptr = self.level_indptr
        # per-vertex level counts and value counts, gathered in target order
        level_counts = (vertex_indptr[1:] - vertex_indptr[:-1])[order_array]
        new_vertex_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(level_counts, out=new_vertex_indptr[1:])
        # flat index of every (vertex, depth) level in target order
        total_levels = int(new_vertex_indptr[-1])
        starts = vertex_indptr[order_array]
        within = np.arange(total_levels, dtype=np.int64) - np.repeat(
            new_vertex_indptr[:-1], level_counts
        )
        old_levels = np.repeat(starts, level_counts) + within
        lengths = level_indptr[old_levels + 1] - level_indptr[old_levels]
        new_level_indptr = np.zeros(total_levels + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_level_indptr[1:])
        total_values = int(new_level_indptr[-1])
        value_within = np.arange(total_values, dtype=np.int64) - np.repeat(
            new_level_indptr[:-1], lengths
        )
        values = self.values[np.repeat(level_indptr[old_levels], lengths) + value_within]
        return FlatLabelling(
            num_vertices=n,
            values=values,
            level_indptr=new_level_indptr,
            vertex_indptr=new_vertex_indptr,
        )

    # ------------------------------------------------------------------ #
    # element access (mirrors HC2LLabelling)
    # ------------------------------------------------------------------ #
    def num_levels(self, vertex: int) -> int:
        """Number of levels stored for ``vertex`` (= node depth + 1)."""
        return int(self.vertex_indptr[vertex + 1] - self.vertex_indptr[vertex])

    def level_array(self, vertex: int, depth: int) -> List[float]:
        """Distance array of ``vertex`` at hierarchy depth ``depth`` (a copy)."""
        return self.level_view(vertex, depth).tolist()

    def level_view(self, vertex: int, depth: int) -> np.ndarray:
        """Zero-copy view of the distance array of ``(vertex, depth)``."""
        k = int(self.vertex_indptr[vertex]) + depth
        if k >= self.vertex_indptr[vertex + 1]:
            raise IndexError(f"vertex {vertex} has no level {depth}")
        return self.values[int(self.level_indptr[k]) : int(self.level_indptr[k + 1])]

    # ------------------------------------------------------------------ #
    # size metrics (mirror HC2LLabelling so either backend feeds Tables 2-4)
    # ------------------------------------------------------------------ #
    def total_entries(self) -> int:
        """Total number of stored distance values."""
        return int(self.values.shape[0])

    def entries_of(self, vertex: int) -> int:
        """Number of distance values stored for one vertex."""
        start = self.level_indptr[self.vertex_indptr[vertex]]
        end = self.level_indptr[self.vertex_indptr[vertex + 1]]
        return int(end - start)

    def size_bytes(self) -> int:
        """Approximate labelling size in bytes (same model as the nested form)."""
        level_overhead = 2 * (len(self.level_indptr) - 1)
        return self.total_entries() * 8 + level_overhead + 8 * self.num_vertices

    def average_label_entries(self) -> float:
        """Mean number of stored distance values per vertex."""
        if self.num_vertices == 0:
            return 0.0
        return self.total_entries() / self.num_vertices

    def max_label_entries(self) -> int:
        """Largest per-vertex label, in distance values."""
        if self.num_vertices == 0:
            return 0
        starts = self.level_indptr[self.vertex_indptr[:-1]]
        ends = self.level_indptr[self.vertex_indptr[1:]]
        return int((ends - starts).max())

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the label buffers, closing any backing memory maps.

        Serving processes that recycle workers (the shard fleet) must not
        rely on GC timing to unmap label files; ``close`` drops this
        labelling's references and closes each backing ``mmap`` handle
        eagerly.  A map still exported by another live view (e.g. a
        :meth:`slice_vertices` shard of the same buffer) survives until
        that view is released - closing is best-effort per buffer, never
        an error.  The labelling is unusable afterwards.
        """
        for name in ("values", "level_indptr", "vertex_indptr"):
            buffer = getattr(self, name, None)
            if buffer is None:
                continue
            backing = getattr(buffer, "_mmap", None)
            # drop our reference first so the buffer no longer counts as
            # an exporter of the map
            setattr(self, name, np.empty(0, dtype=buffer.dtype))
            del buffer
            if backing is not None:
                try:
                    backing.close()
                except BufferError:
                    pass  # another live view still exports this map

    def __enter__(self) -> "FlatLabelling":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlatLabelling):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and np.array_equal(self.vertex_indptr, other.vertex_indptr)
            and np.array_equal(self.level_indptr, other.level_indptr)
            and np.array_equal(self.values, other.values)
        )

    def __repr__(self) -> str:
        return (
            f"FlatLabelling(num_vertices={self.num_vertices}, "
            f"entries={self.total_entries()})"
        )


class FlatWorkingGraph:
    """CSR snapshot of a working adjacency with dense local ids.

    The ranking and labelling passes run one Dijkstra per cut vertex over
    the *same* working subgraph; flattening the dict-of-dicts once lets all
    of those searches iterate plain lists with dense integer ids instead of
    hashing original vertex ids on every edge relaxation.

    The snapshot also carries the state the pluggable shortest-path
    backends (:mod:`repro.core.backends`) need when they process all of a
    node's searches together: :meth:`csr_arrays` exposes the same CSR
    triple as typed numpy arrays, and :attr:`cache` is a scratch dict
    whose lifetime matches the snapshot (per-source distance rows, the
    scipy matrix) - it dies with the node, so nothing accumulates across
    the recursion.
    """

    __slots__ = ("vertices", "dense_id", "_indptr", "_indices", "_weights", "cache", "_np_csr")

    def __init__(self, adjacency: WorkingAdjacency) -> None:
        #: dense id -> original vertex id, in sorted original-id order
        self.vertices: List[int] = sorted(adjacency)
        #: original vertex id -> dense id
        self.dense_id: Dict[int, int] = {v: i for i, v in enumerate(self.vertices)}
        indptr = [0]
        indices: List[int] = []
        weights: List[float] = []
        dense_id = self.dense_id
        for v in self.vertices:
            for w, weight in adjacency[v].items():
                indices.append(dense_id[w])
                weights.append(weight)
            indptr.append(len(indices))
        self._indptr: Optional[List[int]] = indptr
        self._indices: Optional[List[int]] = indices
        self._weights: Optional[List[float]] = weights
        #: backend scratch space (distance-row cache, scipy matrix, ...)
        self.cache: Dict[str, object] = {}
        self._np_csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # The python-list CSR views materialise lazily: array-born snapshots
    # (induce / from_csr_arrays) carry only the numpy triple, and backends
    # that vectorise over it (csr) never pay for per-edge python objects.
    # The list-walking searches (heap backend, flat.dijkstra) touch these
    # properties and get the same lists as before, built on first access.
    @property
    def indptr(self) -> List[int]:
        if self._indptr is None:
            self._indptr = self._np_csr[0].tolist()
        return self._indptr

    @property
    def indices(self) -> List[int]:
        if self._indices is None:
            self._indices = self._np_csr[1].tolist()
        return self._indices

    @property
    def weights(self) -> List[float]:
        if self._weights is None:
            self._weights = self._np_csr[2].tolist()
        return self._weights

    def __len__(self) -> int:
        return len(self.vertices)

    @classmethod
    def from_csr(
        cls,
        vertices: Sequence[int],
        indptr: Sequence[int],
        indices: Sequence[int],
        weights: Sequence[float],
    ) -> "FlatWorkingGraph":
        """Build a snapshot directly from CSR components (no dict walk).

        ``vertices`` maps dense ids to original ids and must be sorted
        ascending (the invariant every snapshot maintains); ``indices``
        holds dense ids.
        """
        snapshot = cls.__new__(cls)
        snapshot.vertices = list(vertices)
        snapshot.dense_id = {v: i for i, v in enumerate(snapshot.vertices)}
        snapshot._indptr = list(indptr)
        snapshot._indices = list(indices)
        snapshot._weights = list(weights)
        snapshot.cache = {}
        snapshot._np_csr = None
        return snapshot

    @classmethod
    def from_csr_arrays(
        cls,
        vertices: Sequence[int],
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> "FlatWorkingGraph":
        """Build a snapshot that owns only the typed numpy CSR triple.

        The python-list views materialise lazily on first access (see the
        ``indptr`` / ``indices`` / ``weights`` properties), so snapshots
        produced by array restrictions (:meth:`induce`) stay free of
        per-edge python objects on the vectorised backends.  Used by
        :meth:`induce` and the process-parallel work units.
        """
        snapshot = cls.__new__(cls)
        snapshot.vertices = list(vertices)
        snapshot.dense_id = {v: i for i, v in enumerate(snapshot.vertices)}
        snapshot._indptr = None
        snapshot._indices = None
        snapshot._weights = None
        snapshot.cache = {}
        snapshot._np_csr = (
            np.asarray(indptr, dtype=np.int64),
            np.asarray(indices, dtype=np.int64),
            np.ascontiguousarray(weights, dtype=np.float64),
        )
        return snapshot

    def induce(self, members: Sequence[int]) -> "FlatWorkingGraph":
        """The snapshot induced on ``members`` (original vertex ids).

        The restriction runs entirely on the numpy CSR arrays - the flat
        counterpart of
        :func:`repro.partition.working_graph.restrict_adjacency`, without
        touching a single dict.  Edge (and therefore relaxation) order is
        preserved, so searches over the induced snapshot are bit-identical
        to searches over a snapshot built from a restricted dict.
        """
        indptr, indices, weights = self.csr_arrays()
        n = len(self.vertices)
        keep = np.zeros(n, dtype=bool)
        member_dense = np.asarray(self.dense_ids(members), dtype=np.int64)
        keep[member_dense] = True
        member_dense = np.nonzero(keep)[0]  # sorted dense ids = sorted originals
        new_id = np.full(n, -1, dtype=np.int64)
        new_id[member_dense] = np.arange(len(member_dense), dtype=np.int64)

        tails = self.tails()
        edge_keep = keep[tails] & keep[indices]
        new_tails = new_id[tails[edge_keep]]
        new_indptr = np.zeros(len(member_dense) + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_tails, minlength=len(member_dense)), out=new_indptr[1:])
        new_indices = new_id[indices[edge_keep]]
        new_weights = weights[edge_keep]
        vertex_list = [self.vertices[i] for i in member_dense.tolist()]
        return FlatWorkingGraph.from_csr_arrays(
            vertex_list, new_indptr, new_indices, new_weights
        )

    def induce_with_shortcuts(
        self, members: Sequence[int], shortcuts: Sequence
    ) -> "FlatWorkingGraph":
        """The induced snapshot on ``members`` with ``shortcuts`` overlaid.

        CSR counterpart of
        :func:`repro.partition.shortcuts.child_adjacency` (restrict, then
        ``apply_shortcuts``).  Equivalent to
        ``self.induce(members).overlay_shortcuts(shortcuts)``; callers that
        already hold the induced snapshot (the construction reuses the one
        the shortcut computation searched) overlay it directly.
        """
        return self.induce(members).overlay_shortcuts(shortcuts)

    def overlay_shortcuts(self, shortcuts: Sequence) -> "FlatWorkingGraph":
        """A snapshot with ``shortcuts`` overlaid on this one's edges.

        Replicates the dict path's (``apply_shortcuts``) edge-order
        semantics exactly so searches stay bit-identical: a shortcut that
        improves an existing edge updates its weight *in place* (position
        unchanged), a new shortcut edge is appended *after* the vertex's
        existing edges, in shortcut order - precisely where a dict insert
        would put it.  Returns ``self`` unchanged when there are no
        shortcuts.
        """
        snapshot = self
        if not shortcuts:
            return snapshot
        indptr, indices, weights = snapshot.csr_arrays()
        weights = weights.copy()
        dense_id = snapshot.dense_id

        def edge_position(tail: int, head: int) -> int:
            for i in range(int(indptr[tail]), int(indptr[tail + 1])):
                if indices[i] == head:
                    return i
            return -1

        #: per dense vertex, the (head, weight) edges appended by shortcuts
        extras: Dict[int, List[Tuple[int, float]]] = {}
        for shortcut in shortcuts:
            du = dense_id.get(shortcut.u)
            dv = dense_id.get(shortcut.v)
            if du is None or dv is None:
                continue
            position = edge_position(du, dv)
            if position >= 0:
                if shortcut.weight < weights[position]:
                    weights[position] = shortcut.weight
                    weights[edge_position(dv, du)] = shortcut.weight
            else:
                extras.setdefault(du, []).append((dv, shortcut.weight))
                extras.setdefault(dv, []).append((du, shortcut.weight))

        if extras:
            n = len(snapshot.vertices)
            extra_counts = np.zeros(n, dtype=np.int64)
            for tail, added in extras.items():
                extra_counts[tail] = len(added)
            old_degrees = np.diff(indptr)
            new_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(old_degrees + extra_counts, out=new_indptr[1:])
            total = int(new_indptr[-1])
            new_indices = np.empty(total, dtype=np.int64)
            new_weights = np.empty(total, dtype=np.float64)
            # existing edges keep their relative order, shifted by the
            # appended edges of all earlier vertices
            destinations = np.arange(len(indices), dtype=np.int64) + np.repeat(
                new_indptr[:-1] - indptr[:-1], old_degrees
            )
            new_indices[destinations] = indices
            new_weights[destinations] = weights
            for tail, added in extras.items():
                base = int(new_indptr[tail + 1]) - len(added)
                for offset, (head, weight) in enumerate(added):
                    new_indices[base + offset] = head
                    new_weights[base + offset] = weight
            indptr, indices, weights = new_indptr, new_indices, new_weights

        return FlatWorkingGraph.from_csr_arrays(
            snapshot.vertices, indptr, indices, weights
        )

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(indptr, indices, weights)`` triple as typed numpy arrays."""
        if self._np_csr is None:
            self._np_csr = (
                np.asarray(self.indptr, dtype=np.int64),
                np.asarray(self.indices, dtype=np.int64),
                np.asarray(self.weights, dtype=np.float64),
            )
        return self._np_csr

    def dense_ids(self, vertices: Sequence[int]) -> List[int]:
        """Dense ids of a sequence of original vertex ids."""
        dense_id = self.dense_id
        return [dense_id[v] for v in vertices]

    def tails(self) -> np.ndarray:
        """Dense tail id of every CSR edge, cached on the snapshot.

        Pairs with ``indices`` (the heads) to give the snapshot's edge
        list in CSR order; the partition layer's vectorised edge scans
        (border masks, flow-region carving, component masking) all need
        it, so one ``np.repeat`` per snapshot serves them all.
        """
        tails = self.cache.get("csr_tails")
        if tails is None:
            indptr, _, _ = self.csr_arrays()
            tails = np.repeat(
                np.arange(len(self.vertices), dtype=np.int64), np.diff(indptr)
            )
            self.cache["csr_tails"] = tails
        return tails

    def dijkstra(self, source: int) -> List[float]:
        """Single-source distances over the CSR arrays (dense ids).

        Returns the full dense distance array with ``inf`` for unreached
        vertices; the flat counterpart of
        :func:`repro.partition.working_graph.dijkstra_adjacency`.
        """
        import heapq

        indptr, indices, weights = self.indptr, self.indices, self.weights
        dist = [INF] * len(self.vertices)
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, v = pop(heap)
            if d > dist[v]:
                continue
            for i in range(indptr[v], indptr[v + 1]):
                w = indices[i]
                nd = d + weights[i]
                if nd < dist[w]:
                    dist[w] = nd
                    push(heap, (nd, w))
        return dist
