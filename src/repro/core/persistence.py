"""Versioned on-disk formats for :class:`~repro.core.index.HC2LIndex`.

The original reproduction pickled the whole index object, which (a)
executes arbitrary code on load, (b) breaks whenever an internal class
changes shape, and (c) stores the nested label lists at Python-object
prices.  Two formats live here:

**Single archive** (:func:`save_index` / :func:`load_index`) - one
``.npz`` archive (the standard numpy zip container) holding

* a JSON header with an explicit format name + version, the construction
  parameters, statistics and metadata, and
* typed arrays for the graph edges, the degree-one contraction, the tree
  hierarchy and the flat label buffers of
  :class:`~repro.core.flat.FlatLabelling`.

**Sharded layout** (:func:`save_index_sharded` / :func:`load_shard`) - a
``<path>.shards/`` directory partitioning the label buffers by core
vertex range for multi-worker serving:

* ``manifest.json`` - shard boundaries, file names and per-shard sizes,
* ``base.npz`` - the label-free remainder of the single archive (header,
  graph, contraction, hierarchy), and
* ``shard-NNNN.npz`` - the re-based flat label buffers of one vertex
  range (the same member names as the single archive, so the per-shard
  mmap sidecar machinery of :func:`mmap_label_arrays` applies unchanged).

Loading validates headers first and raises a clear ``ValueError`` on
anything that is not a compatible archive.  Version-1 single archives
(written before the sharded layout existed) still load; pre-existing
pickle files can also be read, but only when the caller explicitly opts
in with ``allow_pickle=True`` (pickle can execute arbitrary code).
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.construction import ConstructionStats
from repro.core.flat import FlatLabelling
from repro.graph.contraction import ContractedGraph
from repro.graph.graph import Graph
from repro.hierarchy.tree import BalancedTreeHierarchy, TreeNode
from repro.utils.timer import Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.index import HC2LIndex

FORMAT_NAME = "hc2l-index"
#: current single-archive version; version 2 added the ``label_layout``
#: header key (sharded layouts), version 3 persists the hierarchy's DFS
#: subtree ranges (``hier_node_range_lo/hi`` + ``hier_core_position``) so
#: hierarchy-aligned shard boundaries load without re-walking the tree
FORMAT_VERSION = 3
#: single-archive versions this build can read
SUPPORTED_VERSIONS = (1, 2, 3)

SHARDED_FORMAT_NAME = "hc2l-index-shards"
#: manifest version 2 added the ``vertex_order`` key (``identity`` for the
#: classic core-id ranges, ``hierarchy`` for DFS-ordered subtree ranges);
#: version-1 layouts still load and imply identity order
SHARDED_FORMAT_VERSION = 2
SUPPORTED_SHARDED_VERSIONS = (1, 2)
#: accepted ``vertex_order`` manifest values
VERTEX_ORDERS = ("identity", "hierarchy")
MANIFEST_FILENAME = "manifest.json"
BASE_FILENAME = "base.npz"

TREE_SIDECAR_FORMAT = "hc2l-tree-resolver"
TREE_SIDECAR_VERSION = 1
TREE_SIDECAR_META = "meta.json"


# --------------------------------------------------------------------- #
# save
# --------------------------------------------------------------------- #
def _index_header(index: "HC2LIndex", label_layout: str) -> dict:
    """The JSON header shared by the single archive and the sharded base."""
    parameters = index.parameters
    stats = index.stats
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "label_layout": label_layout,
        "parameters": {
            "beta": parameters.beta,
            "leaf_size": parameters.leaf_size,
            "tail_pruning": parameters.tail_pruning,
            "contract": parameters.contract,
            "num_workers": parameters.num_workers,
            # absent in pre-backend archives; HC2LParameters defaults them
            "backend": getattr(parameters, "backend", "auto"),
            "parallel_mode": getattr(parameters, "parallel_mode", "thread"),
            # absent before the flow-method switch existed; "auto" keeps
            # legacy archives on the backend-selected solver
            "flow_method": getattr(parameters, "flow_method", "auto"),
        },
        "construction_seconds": index.construction_seconds,
        "extra": dict(index._extra),
        "stats": {
            "num_nodes": stats.num_nodes,
            "num_leaves": stats.num_leaves,
            "num_shortcuts": stats.num_shortcuts,
            "num_empty_cuts": stats.num_empty_cuts,
            "max_depth": stats.max_depth,
            "timer": dict(stats.timer.durations),
        },
        "graph_num_vertices": index.graph.num_vertices,
        "core_num_vertices": index.contraction.core.num_vertices,
        "num_original": index.contraction.num_original,
    }


def _base_arrays(index: "HC2LIndex", label_layout: str) -> Dict[str, np.ndarray]:
    """Header + graph + contraction + hierarchy arrays (no labels)."""
    arrays: Dict[str, np.ndarray] = {}
    arrays["header"] = np.frombuffer(
        json.dumps(_index_header(index, label_layout)).encode("utf-8"), dtype=np.uint8
    ).copy()
    _pack_graph(arrays, "graph", index.graph)
    _pack_contraction(arrays, index.contraction)
    _pack_hierarchy(arrays, index.hierarchy)
    return arrays


def _write_npz(path: Union[str, Path], arrays: Dict[str, np.ndarray]) -> None:
    # write-then-rename so a concurrent reader (e.g. a ShardRouter lazily
    # loading a shard while the layout is being rewritten) never opens a
    # torn archive; the open handle also stops np.savez from appending
    # ".npz" to paths with a different extension
    path = Path(path)
    temporary = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        with open(temporary, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(temporary, path)
    finally:
        temporary.unlink(missing_ok=True)


def save_index(index: "HC2LIndex", path: Union[str, Path]) -> None:
    """Serialise ``index`` to ``path`` in the versioned ``.npz`` format."""
    arrays = _base_arrays(index, label_layout="inline")
    flat = index.flat_labelling()
    arrays["label_values"] = flat.values
    arrays["label_level_indptr"] = flat.level_indptr
    arrays["label_vertex_indptr"] = flat.vertex_indptr
    _write_npz(path, arrays)


def _pack_graph(arrays: Dict[str, np.ndarray], prefix: str, graph: Graph) -> None:
    edges = list(graph.edges())
    arrays[f"{prefix}_edges_u"] = np.asarray([e[0] for e in edges], dtype=np.int64)
    arrays[f"{prefix}_edges_v"] = np.asarray([e[1] for e in edges], dtype=np.int64)
    arrays[f"{prefix}_edges_w"] = np.asarray([e[2] for e in edges], dtype=np.float64)


def _pack_contraction(arrays: Dict[str, np.ndarray], contraction: ContractedGraph) -> None:
    _pack_graph(arrays, "core", contraction.core)
    arrays["con_core_to_original"] = np.asarray(contraction.core_to_original, dtype=np.int64)
    arrays["con_original_to_core"] = np.asarray(contraction.original_to_core, dtype=np.int64)
    arrays["con_root"] = np.asarray(contraction.root, dtype=np.int64)
    arrays["con_parent"] = np.asarray(contraction.parent, dtype=np.int64)
    arrays["con_depth"] = np.asarray(contraction.depth, dtype=np.int64)
    arrays["con_dist_to_parent"] = np.asarray(contraction.dist_to_parent, dtype=np.float64)
    arrays["con_dist_to_root"] = np.asarray(contraction.dist_to_root, dtype=np.float64)


def _pack_hierarchy(arrays: Dict[str, np.ndarray], hierarchy: BalancedTreeHierarchy) -> None:
    nodes = hierarchy.nodes
    none = -1
    arrays["hier_node_depth"] = np.asarray([n.depth for n in nodes], dtype=np.int64)
    arrays["hier_node_parent"] = np.asarray(
        [none if n.parent is None else n.parent for n in nodes], dtype=np.int64
    )
    arrays["hier_node_left"] = np.asarray(
        [none if n.left is None else n.left for n in nodes], dtype=np.int64
    )
    arrays["hier_node_right"] = np.asarray(
        [none if n.right is None else n.right for n in nodes], dtype=np.int64
    )
    arrays["hier_node_subtree"] = np.asarray([n.subtree_size for n in nodes], dtype=np.int64)
    arrays["hier_node_is_leaf"] = np.asarray([n.is_leaf for n in nodes], dtype=np.int8)

    cut_indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    cut_values: List[int] = []
    for i, node in enumerate(nodes):
        cut_values.extend(node.cut)
        cut_indptr[i + 1] = len(cut_values)
    arrays["hier_cut_values"] = np.asarray(cut_values, dtype=np.int64)
    arrays["hier_cut_indptr"] = cut_indptr

    # path bitstrings are arbitrary-precision ints (one bit per tree level);
    # store them big-endian byte-packed so any height round-trips losslessly
    bits_indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    bits_bytes = bytearray()
    for i, node in enumerate(nodes):
        encoded = node.bits.to_bytes((node.bits.bit_length() + 7) // 8, "big")
        bits_bytes.extend(encoded)
        bits_indptr[i + 1] = len(bits_bytes)
    arrays["hier_node_bits"] = np.frombuffer(bytes(bits_bytes), dtype=np.uint8).copy()
    arrays["hier_node_bits_indptr"] = bits_indptr

    arrays["hier_vertex_node"] = np.asarray(hierarchy.vertex_node, dtype=np.int64)

    # version 3: the DFS linearisation backing hierarchy-aligned shards
    position = hierarchy.subtree_ranges()
    arrays["hier_core_position"] = np.asarray(position, dtype=np.int64)
    arrays["hier_node_range_lo"] = np.asarray([n.range_lo for n in nodes], dtype=np.int64)
    arrays["hier_node_range_hi"] = np.asarray([n.range_hi for n in nodes], dtype=np.int64)


# --------------------------------------------------------------------- #
# load
# --------------------------------------------------------------------- #
def load_index(
    path: Union[str, Path],
    allow_pickle: bool = False,
    mmap_labels: bool = False,
) -> "HC2LIndex":
    """Load an index saved by :func:`save_index`.

    Raises a descriptive ``ValueError`` when the file is not a (compatible)
    HC2L archive.  With ``allow_pickle=True`` a file that is not an ``.npz``
    archive is additionally tried as a legacy pickle.

    With ``mmap_labels=True`` the flat label buffers - by far the largest
    arrays in the archive - are memory-mapped read-only instead of copied
    into the process.  Numpy cannot map members of a zip container
    directly, so the three buffers are extracted once into plain ``.npy``
    sidecar files next to the archive (``<path>.mmap/``) and mapped from
    there; every further process mapping the same sidecars shares one
    physical copy through the OS page cache.  Distances are bit-identical
    to an in-memory load.
    """
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as error:
        if allow_pickle:
            return _load_legacy_pickle(path)
        raise ValueError(
            f"{path} is not an HC2L .npz index archive ({error}); "
            f"pass allow_pickle=True to read legacy pickle files"
        ) from error

    with archive:
        header = _validate_header(archive, path)
        if header.get("label_layout", "inline") != "inline":
            raise ValueError(
                f"{path} is the base archive of a sharded layout (no inline "
                f"labels); open it with repro.serving.ShardRouter or "
                f"load_index_sharded instead"
            )
        index = _unpack_index(archive, header, path=path, mmap_labels=mmap_labels)
    if mmap_labels:
        # the mmap path is the shared-page serving entry point: also map
        # the Euler-tour sidecar when a fresh one sits next to the labels
        resolver = load_tree_sidecar(path, index.contraction, mmap=True)
        if resolver is not None:
            index.attach_tree_resolver(resolver)
    return index


def _validate_header(archive, path: Union[str, Path]) -> dict:
    """Parse + validate the JSON header of a (single or base) archive."""
    if "header" not in archive.files:
        raise ValueError(f"{path} is an .npz archive but has no HC2L header")
    header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
    if header.get("format") != FORMAT_NAME:
        raise ValueError(
            f"{path} has format {header.get('format')!r}, expected {FORMAT_NAME!r}"
        )
    if header.get("version") not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"{path} has format version {header.get('version')!r}; "
            f"this build reads versions {list(SUPPORTED_VERSIONS)}"
        )
    return header


def _load_legacy_pickle(path: Union[str, Path]) -> "HC2LIndex":
    from repro.core.index import HC2LIndex

    with open(path, "rb") as handle:
        index = pickle.load(handle)
    if not isinstance(index, HC2LIndex):
        raise TypeError(f"{path} does not contain an HC2LIndex")
    # Pickles restore __dict__ directly, bypassing __init__.  Files written
    # when HC2LIndex stored nested labels (pre flat-primary storage) carry a
    # 'labelling' instance attribute and lack the flat buffer; normalise so
    # the loaded index satisfies the current storage invariants.
    state = index.__dict__
    nested = state.pop("labelling", None)
    if state.get("_flat") is None:
        if nested is None:
            raise TypeError(f"{path} contains an HC2LIndex pickle without labels")
        state["_flat"] = FlatLabelling.from_labelling(nested)
    state.setdefault("_engine", None)
    state.setdefault("_labelling_view", None)
    state.setdefault("_extra", {})
    return index


def _unpack_graph(archive, prefix: str, num_vertices: int) -> Graph:
    graph = Graph(num_vertices)
    us = archive[f"{prefix}_edges_u"].tolist()
    vs = archive[f"{prefix}_edges_v"].tolist()
    ws = archive[f"{prefix}_edges_w"].tolist()
    for u, v, w in zip(us, vs, ws):
        graph.add_edge(u, v, w)
    return graph


#: archive members holding the flat label buffers (the mmap-shareable part)
LABEL_ARRAY_NAMES = ("label_values", "label_level_indptr", "label_vertex_indptr")


def mmap_label_arrays(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Memory-map the flat label buffers of the archive at ``path``.

    Extracts the three label arrays into ``<path>.mmap/<name>.npy`` sidecar
    files (skipped when up-to-date sidecars already exist) and returns them
    as read-only ``np.memmap``-backed arrays.  Multiple serving processes
    mapping the same sidecars share one physical copy of the labels.
    """
    path = Path(path)
    sidecar_dir = Path(str(path) + ".mmap")
    archive_mtime = path.stat().st_mtime

    def is_stale(sidecar: Path) -> bool:
        # <=, not <: an archive rewritten within the filesystem's mtime
        # granularity must not keep serving the old labels
        return not sidecar.exists() or sidecar.stat().st_mtime <= archive_mtime

    stale = [name for name in LABEL_ARRAY_NAMES if is_stale(sidecar_dir / f"{name}.npy")]
    if stale:
        sidecar_dir.mkdir(parents=True, exist_ok=True)
        with np.load(path, allow_pickle=False) as archive:
            for name in stale:
                # write-then-rename so concurrent loaders never map a torn
                # file; os.replace is atomic within one directory
                final = sidecar_dir / f"{name}.npy"
                temporary = sidecar_dir / f".{name}.{os.getpid()}.tmp.npy"
                np.save(temporary, archive[name])
                os.replace(temporary, final)
    return {
        name: np.load(sidecar_dir / f"{name}.npy", mmap_mode="r")
        for name in LABEL_ARRAY_NAMES
    }


def tree_sidecar_directory(path: Union[str, Path]) -> Path:
    """The ``<path>.tree/`` sidecar directory of an index path."""
    return Path(str(path) + ".tree")


def save_tree_sidecar(index: "HC2LIndex", path: Union[str, Path]) -> Path:
    """Persist the Euler-tour tree resolver next to the index at ``path``.

    The :class:`~repro.core.tree_resolve.TreeDistanceResolver` is normally
    rebuilt lazily per process (a full walk over every contracted vertex);
    persisting its arrays as versioned ``.npy`` sidecars under
    ``<path>.tree/`` shaves that cold-start cost for tree-heavy serving
    workloads - ``load_index(..., mmap_labels=True)`` maps them read-only,
    so co-located workers share one physical copy of the tour.  Answers
    are bit-identical to a freshly built resolver.  Returns the sidecar
    directory.
    """
    resolver = index.engine.resolver.tree_resolver
    path = Path(path)
    sidecar_dir = tree_sidecar_directory(path)
    sidecar_dir.mkdir(parents=True, exist_ok=True)
    arrays = resolver.state_arrays()
    for name, array in arrays.items():
        final = sidecar_dir / f"{name}.npy"
        temporary = sidecar_dir / f".{name}.{os.getpid()}.tmp.npy"
        np.save(temporary, np.ascontiguousarray(array))
        os.replace(temporary, final)  # concurrent loaders never map a torn file
    archive_stat = path.stat() if path.exists() else None
    meta = {
        "format": TREE_SIDECAR_FORMAT,
        "version": TREE_SIDECAR_VERSION,
        "num_members": resolver.num_members,
        "num_original": index.contraction.num_original,
        # identity of the archive this sidecar belongs to; mtime *equality*
        # (not ordering) makes the staleness check immune to coarse
        # filesystem mtime granularity
        "archive_mtime_ns": archive_stat.st_mtime_ns if archive_stat else None,
        "archive_size": archive_stat.st_size if archive_stat else None,
    }
    meta_path = sidecar_dir / TREE_SIDECAR_META
    temporary = sidecar_dir / f".{TREE_SIDECAR_META}.{os.getpid()}.tmp"
    temporary.write_text(json.dumps(meta, indent=2) + "\n", encoding="utf-8")
    # the meta file is written last: its presence marks a complete sidecar
    os.replace(temporary, meta_path)
    return sidecar_dir


def load_tree_sidecar(path: Union[str, Path], contraction: ContractedGraph, mmap: bool = True):
    """Load the tree-resolver sidecar of the index at ``path``, if usable.

    Returns a ready :class:`~repro.core.tree_resolve.TreeDistanceResolver`
    or ``None`` when no sidecar exists, it has an unknown format/version,
    it disagrees with the index (vertex count, member set), or the archive
    was rewritten since the sidecar was saved (the meta file records the
    archive's exact mtime and size at save time, so a rewrite - even
    within the filesystem's mtime granularity window - invalidates the
    sidecar).
    """
    from repro.core.tree_resolve import TreeDistanceResolver

    path = Path(path)
    sidecar_dir = tree_sidecar_directory(path)
    meta_path = sidecar_dir / TREE_SIDECAR_META
    if not meta_path.exists() or not path.exists():
        return None
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except ValueError:
        return None
    if (
        meta.get("format") != TREE_SIDECAR_FORMAT
        or meta.get("version") != TREE_SIDECAR_VERSION
        or int(meta.get("num_original", -1)) != contraction.num_original
    ):
        return None
    archive_stat = path.stat()
    if (
        meta.get("archive_mtime_ns") != archive_stat.st_mtime_ns
        or meta.get("archive_size") != archive_stat.st_size
    ):
        return None
    arrays = {}
    for name in TreeDistanceResolver.STATE_ARRAY_NAMES:
        array_path = sidecar_dir / f"{name}.npy"
        if not array_path.exists():
            return None
        arrays[name] = np.load(array_path, mmap_mode="r" if mmap else None)
    if len(arrays["members"]) != int(meta.get("num_members", -1)):
        return None
    # the member set is fully determined by the contraction; a mismatch
    # means the sidecar belongs to a different index (e.g. one built with
    # contraction disabled on the same graph)
    root = np.asarray(contraction.root, dtype=np.int64)
    contracted = np.nonzero(root != np.arange(len(root), dtype=np.int64))[0]
    expected_members = np.unique(np.concatenate([contracted, root[contracted]]))
    if not np.array_equal(np.asarray(arrays["members"]), expected_members):
        return None
    return TreeDistanceResolver.from_state(
        np.asarray(contraction.dist_to_root, dtype=np.float64), arrays
    )


def _unpack_components(archive, header: dict) -> dict:
    """Everything in a (single or base) archive except the labels."""
    from repro.core.index import HC2LParameters

    graph = _unpack_graph(archive, "graph", int(header["graph_num_vertices"]))
    core = _unpack_graph(archive, "core", int(header["core_num_vertices"]))
    contraction = ContractedGraph(
        core=core,
        core_to_original=archive["con_core_to_original"].tolist(),
        original_to_core=archive["con_original_to_core"].tolist(),
        root=archive["con_root"].tolist(),
        parent=archive["con_parent"].tolist(),
        dist_to_parent=archive["con_dist_to_parent"].tolist(),
        dist_to_root=archive["con_dist_to_root"].tolist(),
        depth=archive["con_depth"].tolist(),
        num_original=int(header["num_original"]),
    )

    hierarchy = _unpack_hierarchy(archive, core.num_vertices)

    stats_header = header["stats"]
    stats = ConstructionStats(
        timer=Timer(durations=dict(stats_header["timer"])),
        num_nodes=int(stats_header["num_nodes"]),
        num_leaves=int(stats_header["num_leaves"]),
        num_shortcuts=int(stats_header["num_shortcuts"]),
        num_empty_cuts=int(stats_header["num_empty_cuts"]),
        max_depth=int(stats_header["max_depth"]),
    )

    # archives written before the parallel-mode rework stored
    # ``num_workers: 0`` for sequential builds; HC2LParameters now
    # requires >= 1, so normalise legacy headers on the way in
    parameters = dict(header["parameters"])
    if int(parameters.get("num_workers", 1)) < 1:
        parameters["num_workers"] = 1

    return {
        "graph": graph,
        "parameters": HC2LParameters(**parameters),
        "contraction": contraction,
        "hierarchy": hierarchy,
        "stats": stats,
        "construction_seconds": float(header["construction_seconds"]),
        "extra": {k: float(v) for k, v in header["extra"].items()},
    }


def _unpack_index(
    archive, header: dict, path: Union[str, Path, None] = None, mmap_labels: bool = False
) -> "HC2LIndex":
    from repro.core.index import HC2LIndex

    components = _unpack_components(archive, header)

    if mmap_labels:
        if path is None:
            raise ValueError("mmap_labels requires the archive path")
        label_arrays = mmap_label_arrays(path)
    else:
        label_arrays = {name: archive[name] for name in LABEL_ARRAY_NAMES}
    flat = FlatLabelling(
        num_vertices=components["contraction"].core.num_vertices,
        values=label_arrays["label_values"],
        level_indptr=label_arrays["label_level_indptr"],
        vertex_indptr=label_arrays["label_vertex_indptr"],
    )

    return HC2LIndex(flat=flat, **components)


def _unpack_hierarchy(archive, num_vertices: int) -> BalancedTreeHierarchy:
    hierarchy = BalancedTreeHierarchy(num_vertices)
    depths = archive["hier_node_depth"].tolist()
    parents = archive["hier_node_parent"].tolist()
    lefts = archive["hier_node_left"].tolist()
    rights = archive["hier_node_right"].tolist()
    subtrees = archive["hier_node_subtree"].tolist()
    is_leafs = archive["hier_node_is_leaf"].tolist()
    cut_values = archive["hier_cut_values"].tolist()
    cut_indptr = archive["hier_cut_indptr"].tolist()
    bits_bytes = archive["hier_node_bits"].tobytes()
    bits_indptr = archive["hier_node_bits_indptr"].tolist()

    for i in range(len(depths)):
        bits = int.from_bytes(bits_bytes[bits_indptr[i] : bits_indptr[i + 1]], "big")
        hierarchy.nodes.append(
            TreeNode(
                index=i,
                depth=depths[i],
                bits=bits,
                cut=cut_values[cut_indptr[i] : cut_indptr[i + 1]],
                parent=None if parents[i] < 0 else parents[i],
                left=None if lefts[i] < 0 else lefts[i],
                right=None if rights[i] < 0 else rights[i],
                subtree_size=subtrees[i],
                is_leaf=bool(is_leafs[i]),
            )
        )

    hierarchy.vertex_node = archive["hier_vertex_node"].tolist()
    for v, node_index in enumerate(hierarchy.vertex_node):
        if node_index >= 0:
            node = hierarchy.nodes[node_index]
            hierarchy.vertex_depth[v] = node.depth
            hierarchy.vertex_bits[v] = node.bits

    if "hier_core_position" in archive.files:  # version >= 3
        range_lo = archive["hier_node_range_lo"].tolist()
        range_hi = archive["hier_node_range_hi"].tolist()
        for node, lo, hi in zip(hierarchy.nodes, range_lo, range_hi):
            node.range_lo = lo
            node.range_hi = hi
        hierarchy.set_core_positions(archive["hier_core_position"].tolist())
    # older archives: subtree_ranges() recomputes the walk on first use
    return hierarchy


# --------------------------------------------------------------------- #
# sharded layout
# --------------------------------------------------------------------- #
def shard_directory(path: Union[str, Path]) -> Path:
    """The ``<path>.shards/`` directory of an index path.

    Accepts either the index path itself (``index.npz`` ->
    ``index.npz.shards``) or the layout directory directly.
    """
    path = Path(path)
    if path.name.endswith(".shards"):
        return path
    return Path(str(path) + ".shards")


def save_index_sharded(
    index: "HC2LIndex",
    path: Union[str, Path],
    num_shards: int = 2,
    boundaries: Union[str, Sequence[int], None] = None,
    generation: Optional[int] = None,
) -> Path:
    """Write ``index`` as a sharded layout under ``<path>.shards/``.

    The label buffers are partitioned by *core* vertex range into
    ``num_shards`` self-contained shard archives; everything else (graph,
    contraction, hierarchy, header) goes into one small ``base.npz``.
    Returns the layout directory.  Shards reuse the single-archive label
    member names, so :func:`mmap_label_arrays` maps each shard's buffers
    read-only with the existing sidecar machinery.

    ``boundaries`` selects the layout:

    * ``None`` or ``"even"`` - split the core id range evenly;
    * ``"hierarchy"`` - store the labels in the hierarchy's DFS order and
      split along subtree edges derived from the top cuts
      (:func:`repro.hierarchy.tree.derive_shard_boundaries`), so
      subtree-local query traffic stays inside one shard;
    * an explicit edge sequence ``[0, ..., core_num_vertices]`` over core
      ids.

    ``generation`` is a monotonically increasing version counter recorded
    in the manifest for hot-swap serving
    (:meth:`repro.serving.shards.ShardRouter.reload_generation`).  With
    ``generation=None`` the writer bumps the generation of any manifest
    already present at the layout (a fresh layout starts at 0); the
    manifest's atomic tmp+rename means readers see either the old complete
    generation or the new one, never a torn mix.
    """
    from repro.hierarchy.tree import derive_shard_boundaries

    if generation is None:
        generation = 0
        existing = shard_directory(path) / MANIFEST_FILENAME
        if existing.exists():
            try:
                previous = json.loads(existing.read_text(encoding="utf-8"))
                generation = int(previous.get("generation", 0)) + 1
            except (ValueError, TypeError, json.JSONDecodeError):
                pass  # corrupt manifest: restart the counter at 0
    generation = int(generation)
    if generation < 0:
        raise ValueError(f"generation must be non-negative, got {generation}")

    flat = index.flat_labelling()
    vertex_order = "identity"
    if boundaries is None or (isinstance(boundaries, str) and boundaries == "even"):
        boundaries = FlatLabelling.even_boundaries(flat.num_vertices, num_shards)
    elif isinstance(boundaries, str):
        if boundaries != "hierarchy":
            raise ValueError(
                f"unknown boundaries mode {boundaries!r}; expected 'even', "
                f"'hierarchy' or an explicit edge sequence"
            )
        boundaries, order = derive_shard_boundaries(index.hierarchy, num_shards)
        flat = flat.reorder(order)
        vertex_order = "hierarchy"
    parts = flat.partition(boundaries)

    shard_dir = shard_directory(path)
    shard_dir.mkdir(parents=True, exist_ok=True)
    _write_npz(shard_dir / BASE_FILENAME, _base_arrays(index, label_layout="sharded"))

    edges = [int(b) for b in boundaries]
    shards: List[dict] = []
    for k, part in enumerate(parts):
        filename = f"shard-{k:04d}.npz"
        _write_npz(
            shard_dir / filename,
            {
                "label_values": part.values,
                "label_level_indptr": part.level_indptr,
                "label_vertex_indptr": part.vertex_indptr,
            },
        )
        shards.append(
            {
                "file": filename,
                "lo": edges[k],
                "hi": edges[k + 1],
                "num_vertices": part.num_vertices,
                "num_levels": len(part.level_indptr) - 1,
                "num_entries": part.total_entries(),
            }
        )

    manifest = {
        "format": SHARDED_FORMAT_NAME,
        "version": SHARDED_FORMAT_VERSION,
        "base": BASE_FILENAME,
        "generation": generation,
        "core_num_vertices": flat.num_vertices,
        "num_original": index.contraction.num_original,
        # boundaries are positions in `vertex_order` space: core ids for
        # "identity", hierarchy DFS positions for "hierarchy"
        "vertex_order": vertex_order,
        "boundaries": edges,
        "shards": shards,
    }
    manifest_path = shard_dir / MANIFEST_FILENAME
    temporary = shard_dir / f".{MANIFEST_FILENAME}.{os.getpid()}.tmp"
    temporary.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    os.replace(temporary, manifest_path)  # readers never see a torn manifest

    # re-sharding over an existing layout with more shards leaves orphans
    # behind; drop any shard archive - and its label-sized mmap sidecar
    # directory - the new manifest does not reference
    current = {shard["file"] for shard in shards}
    for stale in shard_dir.glob("shard-*.npz"):
        if stale.name not in current:
            stale.unlink()
    for sidecar in shard_dir.glob("shard-*.npz.mmap"):
        if sidecar.name[: -len(".mmap")] not in current:
            shutil.rmtree(sidecar)
    return shard_dir


def load_manifest(path: Union[str, Path]) -> Tuple[Path, dict]:
    """Read + validate the manifest of a sharded layout.

    ``path`` may be the original index path, the layout directory or the
    manifest file itself.  Returns ``(layout_directory, manifest)``.
    """
    path = Path(path)
    if path.name == MANIFEST_FILENAME:
        shard_dir = path.parent
    else:
        shard_dir = shard_directory(path)
    manifest_path = shard_dir / MANIFEST_FILENAME
    if not manifest_path.exists():
        raise ValueError(
            f"{shard_dir} is not a sharded index layout (no {MANIFEST_FILENAME}); "
            f"create one with save_index_sharded or 'repro shard'"
        )
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format") != SHARDED_FORMAT_NAME:
        raise ValueError(
            f"{manifest_path} has format {manifest.get('format')!r}, "
            f"expected {SHARDED_FORMAT_NAME!r}"
        )
    if manifest.get("version") not in SUPPORTED_SHARDED_VERSIONS:
        raise ValueError(
            f"{manifest_path} has manifest version {manifest.get('version')!r}; "
            f"this build reads versions {list(SUPPORTED_SHARDED_VERSIONS)}"
        )
    if manifest.setdefault("vertex_order", "identity") not in VERTEX_ORDERS:
        raise ValueError(
            f"{manifest_path} has vertex_order {manifest['vertex_order']!r}; "
            f"this build reads {list(VERTEX_ORDERS)}"
        )
    # pre-generation manifests load as generation 0
    generation = manifest.setdefault("generation", 0)
    if not isinstance(generation, int) or generation < 0:
        raise ValueError(
            f"{manifest_path} has generation {generation!r}; "
            f"expected a non-negative integer"
        )
    edges = manifest.get("boundaries", [])
    if len(edges) != len(manifest.get("shards", [])) + 1:
        raise ValueError(f"{manifest_path} boundaries do not match its shard list")
    return shard_dir, manifest


def load_shard(path: Union[str, Path], shard_id: int, mmap: bool = False) -> FlatLabelling:
    """Load one shard's labelling (local vertex ids, re-based buffers).

    With ``mmap=True`` the buffers are extracted into per-shard ``.npy``
    sidecars (``shard-NNNN.npz.mmap/``) and mapped read-only, so every
    worker serving the shard shares one physical copy.
    """
    shard_dir, manifest = load_manifest(path)
    shards = manifest["shards"]
    if not 0 <= shard_id < len(shards):
        raise ValueError(f"shard {shard_id} out of range; layout has {len(shards)} shards")
    shard_path = shard_dir / shards[shard_id]["file"]
    if mmap:
        label_arrays = mmap_label_arrays(shard_path)
    else:
        with np.load(shard_path, allow_pickle=False) as archive:
            label_arrays = {name: archive[name] for name in LABEL_ARRAY_NAMES}
    return FlatLabelling(
        num_vertices=int(shards[shard_id]["num_vertices"]),
        values=label_arrays["label_values"],
        level_indptr=label_arrays["label_level_indptr"],
        vertex_indptr=label_arrays["label_vertex_indptr"],
    )


def load_sharded_components(path: Union[str, Path]) -> Tuple[dict, dict, Path]:
    """Load the label-free base of a sharded layout.

    Returns ``(components, manifest, layout_directory)`` where
    ``components`` holds graph / contraction / hierarchy / stats /
    parameters - everything a :class:`~repro.serving.shards.ShardRouter`
    needs besides the lazily-loaded shard labellings.
    """
    shard_dir, manifest = load_manifest(path)
    base_path = shard_dir / manifest["base"]
    with np.load(base_path, allow_pickle=False) as archive:
        header = _validate_header(archive, base_path)
        components = _unpack_components(archive, header)
    expected = components["contraction"].core.num_vertices
    if int(manifest["core_num_vertices"]) != expected:
        raise ValueError(
            f"{shard_dir} manifest covers {manifest['core_num_vertices']} core "
            f"vertices but the base archive has {expected}"
        )
    return components, manifest, shard_dir


def load_index_sharded(path: Union[str, Path]) -> "HC2LIndex":
    """Reassemble a full :class:`HC2LIndex` from a sharded layout.

    Concatenates every shard back into one monolithic labelling
    (:meth:`FlatLabelling.concat` is the lossless inverse of the
    partition) - the migration path back from a sharded deployment, and
    the round-trip guarantee the format tests pin down.  The result is an
    owned in-memory copy; for shared-page serving over the layout use
    :class:`~repro.serving.shards.ShardRouter` instead, which maps each
    shard read-only.
    """
    from repro.core.index import HC2LIndex

    components, manifest, _ = load_sharded_components(path)
    parts = [load_shard(path, k) for k in range(len(manifest["shards"]))]
    flat = FlatLabelling.concat(parts)
    if manifest["vertex_order"] == "hierarchy":
        # position p of the concatenation holds the labels of the vertex at
        # DFS position p; gathering through the position array restores the
        # core-id order losslessly
        flat = flat.reorder(components["hierarchy"].subtree_ranges())
    return HC2LIndex(flat=flat, **components)
