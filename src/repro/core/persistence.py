"""Versioned on-disk format for :class:`~repro.core.index.HC2LIndex`.

The original reproduction pickled the whole index object, which (a)
executes arbitrary code on load, (b) breaks whenever an internal class
changes shape, and (c) stores the nested label lists at Python-object
prices.  The format here is a single ``.npz`` archive (the standard numpy
zip container) holding

* a JSON header with an explicit format name + version, the construction
  parameters, statistics and metadata, and
* typed arrays for the graph edges, the degree-one contraction, the tree
  hierarchy and the flat label buffers of
  :class:`~repro.core.flat.FlatLabelling`.

Loading validates the header first and raises a clear ``ValueError`` on
anything that is not a compatible archive.  Pre-existing pickle files can
still be read, but only when the caller explicitly opts in with
``allow_pickle=True`` (pickle can execute arbitrary code).
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Union

import numpy as np

from repro.core.construction import ConstructionStats
from repro.core.flat import FlatLabelling
from repro.graph.contraction import ContractedGraph
from repro.graph.graph import Graph
from repro.hierarchy.tree import BalancedTreeHierarchy, TreeNode
from repro.utils.timer import Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.index import HC2LIndex

FORMAT_NAME = "hc2l-index"
FORMAT_VERSION = 1


# --------------------------------------------------------------------- #
# save
# --------------------------------------------------------------------- #
def save_index(index: "HC2LIndex", path: Union[str, Path]) -> None:
    """Serialise ``index`` to ``path`` in the versioned ``.npz`` format."""
    parameters = index.parameters
    stats = index.stats
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "parameters": {
            "beta": parameters.beta,
            "leaf_size": parameters.leaf_size,
            "tail_pruning": parameters.tail_pruning,
            "contract": parameters.contract,
            "num_workers": parameters.num_workers,
        },
        "construction_seconds": index.construction_seconds,
        "extra": dict(index._extra),
        "stats": {
            "num_nodes": stats.num_nodes,
            "num_leaves": stats.num_leaves,
            "num_shortcuts": stats.num_shortcuts,
            "num_empty_cuts": stats.num_empty_cuts,
            "max_depth": stats.max_depth,
            "timer": dict(stats.timer.durations),
        },
        "graph_num_vertices": index.graph.num_vertices,
        "core_num_vertices": index.contraction.core.num_vertices,
        "num_original": index.contraction.num_original,
    }

    arrays: Dict[str, np.ndarray] = {}
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    ).copy()
    _pack_graph(arrays, "graph", index.graph)
    _pack_contraction(arrays, index.contraction)
    _pack_hierarchy(arrays, index.hierarchy)
    flat = index.flat_labelling()
    arrays["label_values"] = flat.values
    arrays["label_level_indptr"] = flat.level_indptr
    arrays["label_vertex_indptr"] = flat.vertex_indptr

    # write through an open handle: np.savez would otherwise append ".npz"
    # to paths with a different extension
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def _pack_graph(arrays: Dict[str, np.ndarray], prefix: str, graph: Graph) -> None:
    edges = list(graph.edges())
    arrays[f"{prefix}_edges_u"] = np.asarray([e[0] for e in edges], dtype=np.int64)
    arrays[f"{prefix}_edges_v"] = np.asarray([e[1] for e in edges], dtype=np.int64)
    arrays[f"{prefix}_edges_w"] = np.asarray([e[2] for e in edges], dtype=np.float64)


def _pack_contraction(arrays: Dict[str, np.ndarray], contraction: ContractedGraph) -> None:
    _pack_graph(arrays, "core", contraction.core)
    arrays["con_core_to_original"] = np.asarray(contraction.core_to_original, dtype=np.int64)
    arrays["con_original_to_core"] = np.asarray(contraction.original_to_core, dtype=np.int64)
    arrays["con_root"] = np.asarray(contraction.root, dtype=np.int64)
    arrays["con_parent"] = np.asarray(contraction.parent, dtype=np.int64)
    arrays["con_depth"] = np.asarray(contraction.depth, dtype=np.int64)
    arrays["con_dist_to_parent"] = np.asarray(contraction.dist_to_parent, dtype=np.float64)
    arrays["con_dist_to_root"] = np.asarray(contraction.dist_to_root, dtype=np.float64)


def _pack_hierarchy(arrays: Dict[str, np.ndarray], hierarchy: BalancedTreeHierarchy) -> None:
    nodes = hierarchy.nodes
    none = -1
    arrays["hier_node_depth"] = np.asarray([n.depth for n in nodes], dtype=np.int64)
    arrays["hier_node_parent"] = np.asarray(
        [none if n.parent is None else n.parent for n in nodes], dtype=np.int64
    )
    arrays["hier_node_left"] = np.asarray(
        [none if n.left is None else n.left for n in nodes], dtype=np.int64
    )
    arrays["hier_node_right"] = np.asarray(
        [none if n.right is None else n.right for n in nodes], dtype=np.int64
    )
    arrays["hier_node_subtree"] = np.asarray([n.subtree_size for n in nodes], dtype=np.int64)
    arrays["hier_node_is_leaf"] = np.asarray([n.is_leaf for n in nodes], dtype=np.int8)

    cut_indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    cut_values: List[int] = []
    for i, node in enumerate(nodes):
        cut_values.extend(node.cut)
        cut_indptr[i + 1] = len(cut_values)
    arrays["hier_cut_values"] = np.asarray(cut_values, dtype=np.int64)
    arrays["hier_cut_indptr"] = cut_indptr

    # path bitstrings are arbitrary-precision ints (one bit per tree level);
    # store them big-endian byte-packed so any height round-trips losslessly
    bits_indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    bits_bytes = bytearray()
    for i, node in enumerate(nodes):
        encoded = node.bits.to_bytes((node.bits.bit_length() + 7) // 8, "big")
        bits_bytes.extend(encoded)
        bits_indptr[i + 1] = len(bits_bytes)
    arrays["hier_node_bits"] = np.frombuffer(bytes(bits_bytes), dtype=np.uint8).copy()
    arrays["hier_node_bits_indptr"] = bits_indptr

    arrays["hier_vertex_node"] = np.asarray(hierarchy.vertex_node, dtype=np.int64)


# --------------------------------------------------------------------- #
# load
# --------------------------------------------------------------------- #
def load_index(
    path: Union[str, Path],
    allow_pickle: bool = False,
    mmap_labels: bool = False,
) -> "HC2LIndex":
    """Load an index saved by :func:`save_index`.

    Raises a descriptive ``ValueError`` when the file is not a (compatible)
    HC2L archive.  With ``allow_pickle=True`` a file that is not an ``.npz``
    archive is additionally tried as a legacy pickle.

    With ``mmap_labels=True`` the flat label buffers - by far the largest
    arrays in the archive - are memory-mapped read-only instead of copied
    into the process.  Numpy cannot map members of a zip container
    directly, so the three buffers are extracted once into plain ``.npy``
    sidecar files next to the archive (``<path>.mmap/``) and mapped from
    there; every further process mapping the same sidecars shares one
    physical copy through the OS page cache.  Distances are bit-identical
    to an in-memory load.
    """
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as error:
        if allow_pickle:
            return _load_legacy_pickle(path)
        raise ValueError(
            f"{path} is not an HC2L .npz index archive ({error}); "
            f"pass allow_pickle=True to read legacy pickle files"
        ) from error

    with archive:
        if "header" not in archive.files:
            raise ValueError(f"{path} is an .npz archive but has no HC2L header")
        header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
        if header.get("format") != FORMAT_NAME:
            raise ValueError(
                f"{path} has format {header.get('format')!r}, expected {FORMAT_NAME!r}"
            )
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path} has format version {header.get('version')!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        return _unpack_index(archive, header, path=path, mmap_labels=mmap_labels)


def _load_legacy_pickle(path: Union[str, Path]) -> "HC2LIndex":
    from repro.core.index import HC2LIndex

    with open(path, "rb") as handle:
        index = pickle.load(handle)
    if not isinstance(index, HC2LIndex):
        raise TypeError(f"{path} does not contain an HC2LIndex")
    # Pickles restore __dict__ directly, bypassing __init__.  Files written
    # when HC2LIndex stored nested labels (pre flat-primary storage) carry a
    # 'labelling' instance attribute and lack the flat buffer; normalise so
    # the loaded index satisfies the current storage invariants.
    state = index.__dict__
    nested = state.pop("labelling", None)
    if state.get("_flat") is None:
        if nested is None:
            raise TypeError(f"{path} contains an HC2LIndex pickle without labels")
        state["_flat"] = FlatLabelling.from_labelling(nested)
    state.setdefault("_engine", None)
    state.setdefault("_labelling_view", None)
    state.setdefault("_extra", {})
    return index


def _unpack_graph(archive, prefix: str, num_vertices: int) -> Graph:
    graph = Graph(num_vertices)
    us = archive[f"{prefix}_edges_u"].tolist()
    vs = archive[f"{prefix}_edges_v"].tolist()
    ws = archive[f"{prefix}_edges_w"].tolist()
    for u, v, w in zip(us, vs, ws):
        graph.add_edge(u, v, w)
    return graph


#: archive members holding the flat label buffers (the mmap-shareable part)
LABEL_ARRAY_NAMES = ("label_values", "label_level_indptr", "label_vertex_indptr")


def mmap_label_arrays(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Memory-map the flat label buffers of the archive at ``path``.

    Extracts the three label arrays into ``<path>.mmap/<name>.npy`` sidecar
    files (skipped when up-to-date sidecars already exist) and returns them
    as read-only ``np.memmap``-backed arrays.  Multiple serving processes
    mapping the same sidecars share one physical copy of the labels.
    """
    path = Path(path)
    sidecar_dir = Path(str(path) + ".mmap")
    archive_mtime = path.stat().st_mtime

    def is_stale(sidecar: Path) -> bool:
        # <=, not <: an archive rewritten within the filesystem's mtime
        # granularity must not keep serving the old labels
        return not sidecar.exists() or sidecar.stat().st_mtime <= archive_mtime

    stale = [name for name in LABEL_ARRAY_NAMES if is_stale(sidecar_dir / f"{name}.npy")]
    if stale:
        sidecar_dir.mkdir(parents=True, exist_ok=True)
        with np.load(path, allow_pickle=False) as archive:
            for name in stale:
                # write-then-rename so concurrent loaders never map a torn
                # file; os.replace is atomic within one directory
                final = sidecar_dir / f"{name}.npy"
                temporary = sidecar_dir / f".{name}.{os.getpid()}.tmp.npy"
                np.save(temporary, archive[name])
                os.replace(temporary, final)
    return {
        name: np.load(sidecar_dir / f"{name}.npy", mmap_mode="r")
        for name in LABEL_ARRAY_NAMES
    }


def _unpack_index(
    archive, header: dict, path: Union[str, Path, None] = None, mmap_labels: bool = False
) -> "HC2LIndex":
    from repro.core.index import HC2LIndex, HC2LParameters

    graph = _unpack_graph(archive, "graph", int(header["graph_num_vertices"]))
    core = _unpack_graph(archive, "core", int(header["core_num_vertices"]))
    contraction = ContractedGraph(
        core=core,
        core_to_original=archive["con_core_to_original"].tolist(),
        original_to_core=archive["con_original_to_core"].tolist(),
        root=archive["con_root"].tolist(),
        parent=archive["con_parent"].tolist(),
        dist_to_parent=archive["con_dist_to_parent"].tolist(),
        dist_to_root=archive["con_dist_to_root"].tolist(),
        depth=archive["con_depth"].tolist(),
        num_original=int(header["num_original"]),
    )

    hierarchy = _unpack_hierarchy(archive, core.num_vertices)

    if mmap_labels:
        if path is None:
            raise ValueError("mmap_labels requires the archive path")
        label_arrays = mmap_label_arrays(path)
    else:
        label_arrays = {name: archive[name] for name in LABEL_ARRAY_NAMES}
    flat = FlatLabelling(
        num_vertices=core.num_vertices,
        values=label_arrays["label_values"],
        level_indptr=label_arrays["label_level_indptr"],
        vertex_indptr=label_arrays["label_vertex_indptr"],
    )

    stats_header = header["stats"]
    stats = ConstructionStats(
        timer=Timer(durations=dict(stats_header["timer"])),
        num_nodes=int(stats_header["num_nodes"]),
        num_leaves=int(stats_header["num_leaves"]),
        num_shortcuts=int(stats_header["num_shortcuts"]),
        num_empty_cuts=int(stats_header["num_empty_cuts"]),
        max_depth=int(stats_header["max_depth"]),
    )

    return HC2LIndex(
        graph=graph,
        parameters=HC2LParameters(**header["parameters"]),
        contraction=contraction,
        hierarchy=hierarchy,
        flat=flat,
        stats=stats,
        construction_seconds=float(header["construction_seconds"]),
        extra={k: float(v) for k, v in header["extra"].items()},
    )


def _unpack_hierarchy(archive, num_vertices: int) -> BalancedTreeHierarchy:
    hierarchy = BalancedTreeHierarchy(num_vertices)
    depths = archive["hier_node_depth"].tolist()
    parents = archive["hier_node_parent"].tolist()
    lefts = archive["hier_node_left"].tolist()
    rights = archive["hier_node_right"].tolist()
    subtrees = archive["hier_node_subtree"].tolist()
    is_leafs = archive["hier_node_is_leaf"].tolist()
    cut_values = archive["hier_cut_values"].tolist()
    cut_indptr = archive["hier_cut_indptr"].tolist()
    bits_bytes = archive["hier_node_bits"].tobytes()
    bits_indptr = archive["hier_node_bits_indptr"].tolist()

    for i in range(len(depths)):
        bits = int.from_bytes(bits_bytes[bits_indptr[i] : bits_indptr[i + 1]], "big")
        hierarchy.nodes.append(
            TreeNode(
                index=i,
                depth=depths[i],
                bits=bits,
                cut=cut_values[cut_indptr[i] : cut_indptr[i + 1]],
                parent=None if parents[i] < 0 else parents[i],
                left=None if lefts[i] < 0 else lefts[i],
                right=None if rights[i] < 0 else rights[i],
                subtree_size=subtrees[i],
                is_leaf=bool(is_leafs[i]),
            )
        )

    hierarchy.vertex_node = archive["hier_vertex_node"].tolist()
    for v, node_index in enumerate(hierarchy.vertex_node):
        if node_index >= 0:
            node = hierarchy.nodes[node_index]
            hierarchy.vertex_depth[v] = node.depth
            hierarchy.vertex_bits[v] = node.bits
    return hierarchy
