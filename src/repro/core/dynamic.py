"""Dynamic edge-weight updates (Section 5.4 of the paper).

The paper's closing remarks observe that the balanced tree hierarchy does
not depend on edge weights - only the shortcut weights and the distance
values do - so when travel times change (road closures, congestion) the
hierarchy can be preserved and only the labels need refreshing.  This
module implements exactly that: :func:`relabel` re-runs the labelling pass
of the construction over an *existing* hierarchy with new edge weights,
skipping the expensive balanced-cut computations entirely.

Topology changes (adding or removing edges/vertices) are out of scope, as
in the paper; :class:`DynamicHC2LIndex` raises for them and a full rebuild
is required.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.backends import ShortestPathBackend, resolve_backend
from repro.core.construction import ConstructionStats
from repro.core.index import HC2LIndex, HC2LParameters
from repro.core.labelling import HC2LLabelling, node_distance_arrays
from repro.core.ranking import CutRanking, rank_cut_vertices
from repro.graph.contraction import ContractedGraph, contract_degree_one
from repro.graph.graph import Graph
from repro.hierarchy.tree import BalancedTreeHierarchy, TreeNode
from repro.partition.shortcuts import child_adjacency, compute_shortcuts
from repro.partition.working_graph import WorkingAdjacency, working_graph_from


def relabel(index: HC2LIndex, new_graph: Graph) -> HC2LIndex:
    """Rebuild the labels of ``index`` for ``new_graph`` reusing its hierarchy.

    ``new_graph`` must have exactly the same vertices and edges as the
    graph the index was built from - only edge weights may differ.  The
    balanced tree hierarchy (which cuts exist and which subtree every
    vertex belongs to) is preserved; cut-vertex ranks, shortcuts and all
    distance arrays are recomputed under the new weights.
    """
    _check_same_topology(index.graph, new_graph)
    start = time.perf_counter()

    if index.parameters.contract:
        contraction = contract_degree_one(new_graph)
        _check_same_contraction(index.contraction, contraction)
    else:
        from repro.core.index import _identity_contraction

        contraction = _identity_contraction(new_graph)

    hierarchy = index.hierarchy
    core = contraction.core
    labelling = HC2LLabelling(core.num_vertices)
    stats = ConstructionStats()
    adjacency = working_graph_from(core)
    # legacy pickled parameters may predate the backend field
    backend = resolve_backend(getattr(index.parameters, "backend", "auto"))

    new_hierarchy = _copy_hierarchy_structure(hierarchy)
    roots = [node for node in hierarchy.nodes if node.parent is None]
    for root in roots:
        _relabel_node(
            index, root, adjacency, new_hierarchy, labelling, stats, index.parameters, backend
        )

    elapsed = time.perf_counter() - start
    return HC2LIndex(
        graph=new_graph,
        parameters=index.parameters,
        contraction=contraction,
        hierarchy=new_hierarchy,
        labelling=labelling,
        stats=stats,
        construction_seconds=elapsed,
    )


def _relabel_node(
    index: HC2LIndex,
    node: TreeNode,
    adjacency: WorkingAdjacency,
    new_hierarchy: BalancedTreeHierarchy,
    labelling: HC2LLabelling,
    stats: ConstructionStats,
    parameters: HC2LParameters,
    backend: ShortestPathBackend,
) -> None:
    """Recompute ranking, labels and shortcuts for one node of the old tree."""
    old_hierarchy = index.hierarchy
    with stats.timer.measure("labelling"):
        from repro.core.flat import FlatWorkingGraph

        flat = FlatWorkingGraph(adjacency)
        ranking: CutRanking = rank_cut_vertices(
            adjacency, node.cut, flat=flat, backend=backend
        )
        arrays, cut_distances = node_distance_arrays(
            adjacency, ranking, parameters.tail_pruning, flat=flat, backend=backend
        )
    new_node = new_hierarchy.nodes[node.index]
    new_node.cut = list(ranking.ordered)
    for vertex in ranking.ordered:
        new_hierarchy.vertex_node[vertex] = new_node.index
        new_hierarchy.vertex_depth[vertex] = new_node.depth
        new_hierarchy.vertex_bits[vertex] = new_node.bits
    for vertex in adjacency:
        labelling.append_level(vertex, arrays[vertex])
    stats.num_nodes += 1
    if node.is_leaf:
        stats.num_leaves += 1
        return

    for child_index in (node.left, node.right):
        if child_index is None:
            continue
        child_node = old_hierarchy.nodes[child_index]
        child_vertices = old_hierarchy.subtree_vertices(child_index)
        with stats.timer.measure("shortcuts"):
            shortcuts = compute_shortcuts(
                adjacency, ranking.ordered, child_vertices, cut_distances, backend=backend
            )
            child_adj = child_adjacency(adjacency, child_vertices, shortcuts)
        stats.num_shortcuts += len(shortcuts)
        _relabel_node(
            index, child_node, child_adj, new_hierarchy, labelling, stats, parameters, backend
        )


def _copy_hierarchy_structure(hierarchy: BalancedTreeHierarchy) -> BalancedTreeHierarchy:
    """Clone the tree skeleton (nodes, bits, parent/child links) without labels."""
    clone = BalancedTreeHierarchy(hierarchy.num_vertices)
    clone.vertex_node = list(hierarchy.vertex_node)
    clone.vertex_depth = list(hierarchy.vertex_depth)
    clone.vertex_bits = list(hierarchy.vertex_bits)
    for node in hierarchy.nodes:
        clone.nodes.append(
            TreeNode(
                index=node.index,
                depth=node.depth,
                bits=node.bits,
                cut=list(node.cut),
                parent=node.parent,
                left=node.left,
                right=node.right,
                subtree_size=node.subtree_size,
                is_leaf=node.is_leaf,
            )
        )
    return clone


def _check_same_topology(old: Graph, new: Graph) -> None:
    """Both graphs must have identical vertex and edge sets."""
    if old.num_vertices != new.num_vertices:
        raise ValueError(
            f"relabel requires identical topology; vertex counts differ "
            f"({old.num_vertices} vs {new.num_vertices})"
        )
    if old.num_edges != new.num_edges:
        raise ValueError(
            f"relabel requires identical topology; edge counts differ "
            f"({old.num_edges} vs {new.num_edges})"
        )
    for u, v, _ in old.edges():
        if not new.has_edge(u, v):
            raise ValueError(f"relabel requires identical topology; edge ({u}, {v}) is missing")


def _check_same_contraction(old: ContractedGraph, new: ContractedGraph) -> None:
    """The degree-one contraction is purely topological, so it must not change."""
    if old.core_to_original != new.core_to_original:
        raise ValueError("contraction changed between the old and new graph; rebuild required")


class DynamicHC2LIndex:
    """An HC2L index that supports edge-weight updates without full rebuilds.

    Weight updates are buffered and applied lazily: queries trigger a
    relabelling pass (hierarchy preserved) when pending updates exist.
    This mirrors the strategy sketched in Section 5.4: construction of the
    hierarchy is weight-independent, so only distance values are refreshed.

    The flush path never mutates label storage in place.  ``HC2LIndex``
    keeps its flat buffers as the single source of truth (assigning or
    appending to ``index.labelling`` raises), so the relabelling pass
    builds a fresh labelling and swaps the whole index - every derived
    structure (flat buffers, batch engine, nested view) is invalidated
    together instead of silently desyncing.

    Implements the batch-first :class:`repro.core.oracle.DistanceOracle`
    protocol by flushing and delegating to the underlying index.
    """

    def __init__(self, graph: Graph, parameters: Optional[HC2LParameters] = None, **overrides: object) -> None:
        self._graph = graph.copy()
        self._index = HC2LIndex.build(self._graph, parameters, **overrides)
        self._pending: Dict[Tuple[int, int], float] = {}
        self.relabel_count = 0

    # ------------------------------------------------------------------ #
    @property
    def index(self) -> HC2LIndex:
        """The current (possibly stale) underlying index."""
        return self._index

    def update_edge_weight(self, u: int, v: int, weight: float) -> None:
        """Schedule a weight change for the existing edge ``(u, v)``."""
        if not self._graph.has_edge(u, v):
            raise KeyError(f"edge ({u}, {v}) does not exist; topology changes require a rebuild")
        if weight <= 0:
            raise ValueError(f"edge weights must stay positive, got {weight}")
        self._pending[(min(u, v), max(u, v))] = float(weight)

    def pending_updates(self) -> int:
        """Number of buffered weight changes not yet applied."""
        return len(self._pending)

    def flush(self) -> None:
        """Apply all pending weight changes by relabelling over the old hierarchy."""
        if not self._pending:
            return
        self._graph = self._graph.reweighted(self._pending)
        self._index = relabel(self._index, self._graph)
        self._pending.clear()
        self.relabel_count += 1

    def distance(self, s: int, t: int) -> float:
        """Exact distance under the most recent weights (flushes lazily)."""
        self.flush()
        return self._index.distance(s, t)

    def distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Batched exact distances under the most recent weights."""
        self.flush()
        return self._index.distances(pairs)

    def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Distances from ``s`` to every target under the most recent weights."""
        self.flush()
        return self._index.one_to_many(s, targets)

    def many_to_many(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        """Distance matrix under the most recent weights."""
        self.flush()
        return self._index.many_to_many(sources, targets)

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus hubs scanned under the most recent weights."""
        self.flush()
        return self._index.distance_with_hub_count(s, t)

    @property
    def construction_seconds(self) -> float:
        """Build time of the most recent (re)labelling pass."""
        return self._index.construction_seconds

    @property
    def supports_batch(self) -> bool:
        """Batch queries are vectorised by the underlying engine."""
        return True

    @property
    def index_size_bytes(self) -> int:
        """Size of the current labelling (protocol metadata)."""
        return self.label_size_bytes()

    def label_size_bytes(self) -> int:
        """Size of the current labelling."""
        return self._index.label_size_bytes()

