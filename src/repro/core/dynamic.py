"""Dynamic edge-weight updates (Section 5.4 of the paper).

The paper's closing remarks observe that the balanced tree hierarchy does
not depend on edge weights - only the shortcut weights and the distance
values do - so when travel times change (road closures, congestion) the
hierarchy can be preserved and only the labels need refreshing.  This
module implements exactly that: :func:`relabel` re-runs the labelling pass
of the construction over an *existing* hierarchy with new edge weights,
skipping the expensive balanced-cut computations entirely.

Topology changes (adding or removing edges/vertices) are out of scope, as
in the paper; :class:`DynamicHC2LIndex` raises for them and a full rebuild
is required.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.backends import ShortestPathBackend, resolve_backend
from repro.core.construction import ConstructionStats
from repro.core.index import HC2LIndex, HC2LParameters
from repro.core.labelling import HC2LLabelling, node_distance_arrays
from repro.core.ranking import CutRanking, rank_cut_vertices
from repro.graph.contraction import ContractedGraph, contract_degree_one
from repro.graph.graph import Graph
from repro.hierarchy.tree import BalancedTreeHierarchy, TreeNode
from repro.partition.shortcuts import (
    apply_shortcuts,
    child_adjacency,
    compute_shortcuts,
)
from repro.partition.working_graph import (
    WorkingAdjacency,
    restrict_adjacency,
    working_graph_from,
)

INF = float("inf")


#: edge keys accepted by :func:`relabel`'s ``changed_edges``: a mapping or
#: iterable of ``(u, v)`` pairs in original vertex ids, any orientation
ChangedEdges = Union[Mapping[Tuple[int, int], float], Iterable[Tuple[int, int]]]


def relabel(
    index: HC2LIndex,
    new_graph: Graph,
    changed_edges: Optional[ChangedEdges] = None,
) -> HC2LIndex:
    """Rebuild the labels of ``index`` for ``new_graph`` reusing its hierarchy.

    ``new_graph`` must have exactly the same vertices and edges as the
    graph the index was built from - only edge weights may differ.  The
    balanced tree hierarchy (which cuts exist and which subtree every
    vertex belongs to) is preserved; cut-vertex ranks, shortcuts and all
    distance arrays are recomputed under the new weights.

    ``changed_edges`` optionally declares which edges changed (a mapping
    or iterable of ``(u, v)`` pairs, any orientation).  When given, the
    relabelling is *scoped*: only hierarchy subtrees whose working
    subgraph actually changed under the new weights are recomputed, and
    the label levels of untouched subtrees are spliced over from the old
    index bit-for-bit.  The declaration is validated against the real
    weight diff between the two graphs - an undeclared change raises
    rather than silently serving stale distances.  When the touched
    region is large enough that scoping would not pay, the full pass runs
    instead (same result either way).
    """
    start = time.perf_counter()

    diff = _topology_checked_diff(index.graph, new_graph)
    if changed_edges is not None:
        _check_declared_changes(diff, changed_edges)

    if index.parameters.contract:
        contraction = _reweighted_contraction(index.contraction, new_graph, diff)
        if contraction is None:
            contraction = contract_degree_one(new_graph)
            _check_same_contraction(index.contraction, contraction)
    else:
        from repro.core.index import _identity_contraction

        contraction = _identity_contraction(new_graph)

    hierarchy = index.hierarchy
    core = contraction.core
    labelling = HC2LLabelling(core.num_vertices)
    stats = ConstructionStats()
    adjacency = working_graph_from(core)
    # legacy pickled parameters may predate the backend field
    backend = resolve_backend(getattr(index.parameters, "backend", "auto"))

    new_hierarchy = _copy_hierarchy_structure(hierarchy)
    roots = [node for node in hierarchy.nodes if node.parent is None]

    core_diff = _core_diff_edges(index.contraction, diff)
    scoped = changed_edges is not None and _scoping_pays(hierarchy, core_diff)
    extra: Dict[str, float] = {}
    if scoped:
        old_adjacency = working_graph_from(index.contraction.core)
        delta = sorted({(min(u, v), max(u, v)) for u, v in core_diff})
        counters = {"recomputed": 0, "spliced": 0}
        for root in roots:
            _scoped_node(
                index,
                root,
                old_adjacency,
                adjacency,
                delta,
                new_hierarchy,
                labelling,
                stats,
                index.parameters,
                backend,
                counters,
            )
        extra = {
            "relabel_scoped": 1.0,
            "relabel_nodes_recomputed": float(counters["recomputed"]),
            "relabel_nodes_spliced": float(counters["spliced"]),
        }
    else:
        for root in roots:
            _relabel_node(
                index, root, adjacency, new_hierarchy, labelling, stats, index.parameters, backend
            )

    elapsed = time.perf_counter() - start
    return HC2LIndex(
        graph=new_graph,
        parameters=index.parameters,
        contraction=contraction,
        hierarchy=new_hierarchy,
        labelling=labelling,
        stats=stats,
        construction_seconds=elapsed,
        extra=extra,
    )


def _weight_diff(old: Graph, new: Graph) -> List[Tuple[int, int]]:
    """Edges (normalised original-id keys) whose weight differs between the graphs."""
    new_weights = {(u, v): w for u, v, w in new.edges()}
    return [(u, v) for u, v, w in old.edges() if new_weights[(u, v)] != w]


def _topology_checked_diff(old: Graph, new: Graph) -> List[Tuple[int, int]]:
    """One pass computing the weight diff and enforcing identical topology."""
    if old.num_vertices != new.num_vertices:
        raise ValueError(
            f"relabel requires identical topology; vertex counts differ "
            f"({old.num_vertices} vs {new.num_vertices})"
        )
    if old.num_edges != new.num_edges:
        raise ValueError(
            f"relabel requires identical topology; edge counts differ "
            f"({old.num_edges} vs {new.num_edges})"
        )
    new_weights = {(u, v): w for u, v, w in new.edges()}
    diff = []
    for u, v, w in old.edges():
        new_w = new_weights.get((u, v))
        if new_w is None:
            raise ValueError(f"relabel requires identical topology; edge ({u}, {v}) is missing")
        if new_w != w:
            diff.append((u, v))
    return diff


def _check_declared_changes(
    diff: Sequence[Tuple[int, int]], changed_edges: ChangedEdges
) -> None:
    """Every actually-changed edge must be declared; anything else is a lie."""
    declared = {(min(u, v), max(u, v)) for u, v in changed_edges}
    undeclared = [edge for edge in diff if edge not in declared]
    if undeclared:
        raise ValueError(
            f"changed_edges omits {len(undeclared)} edge(s) whose weight actually "
            f"changed (scoped relabel would serve stale distances): {undeclared[:5]}"
        )


def _reweighted_contraction(
    contraction: ContractedGraph, new_graph: Graph, diff: Sequence[Tuple[int, int]]
) -> Optional[ContractedGraph]:
    """Rebuild the contraction for ``new_graph`` without re-running it.

    The degree-one contraction is purely topological and ``relabel``
    requires identical topology, so the structure (which vertices
    contract, attachment trees, depths) always carries over.  When no
    changed edge touches a contracted vertex the attachment-tree distance
    arrays are untouched too, and only the core graph's changed edges
    need reweighting.  Returns ``None`` when a pendant edge changed (the
    caller re-runs the full contraction to refresh the distance arrays).
    """
    core_weights: Dict[Tuple[int, int], float] = {}
    for u, v in diff:
        cu, cv = contraction.original_to_core[u], contraction.original_to_core[v]
        if cu < 0 or cv < 0:
            return None
        core_weights[(min(cu, cv), max(cu, cv))] = new_graph.edge_weight(u, v)
    return ContractedGraph(
        core=contraction.core.reweighted(core_weights),
        core_to_original=contraction.core_to_original,
        original_to_core=contraction.original_to_core,
        root=contraction.root,
        parent=contraction.parent,
        dist_to_parent=contraction.dist_to_parent,
        dist_to_root=contraction.dist_to_root,
        depth=contraction.depth,
        num_original=contraction.num_original,
    )


def _core_diff_edges(
    contraction: ContractedGraph, diff: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Map changed original edges to core-id edges.

    Edges with a contracted endpoint live entirely inside an attachment
    tree: they affect only the contraction's distance arrays (recomputed
    from scratch by every relabel), never the core labels.
    """
    core_edges = []
    for u, v in diff:
        cu, cv = contraction.original_to_core[u], contraction.original_to_core[v]
        if cu >= 0 and cv >= 0:
            core_edges.append((cu, cv))
    return core_edges


def _scoping_pays(
    hierarchy: BalancedTreeHierarchy, core_diff: Sequence[Tuple[int, int]]
) -> bool:
    """Estimate whether the scoped walk beats the full pass.

    A changed core edge ``(a, b)`` dirties exactly the nodes on the
    root-to-LCA(a, b) chain (the nodes whose working subgraph contains
    both endpoints); descendants are only touched if their inherited
    shortcuts shift, which the walk detects by adjacency equality.  Each
    dirty node costs roughly twice a full-pass node (old-side cut
    distances are recomputed too), so scoping pays when twice the dirty
    cost is below the whole-tree cost.
    """
    if not hierarchy.nodes:
        return True
    dirty: Set[int] = set()
    for a, b in core_diff:
        node: Optional[TreeNode] = hierarchy.lca_node(a, b)
        while node is not None:
            if node.index in dirty:
                break
            dirty.add(node.index)
            node = hierarchy.nodes[node.parent] if node.parent is not None else None

    def cost(node: TreeNode) -> int:
        return max(1, node.subtree_size) * max(1, len(node.cut))

    dirty_cost = sum(cost(hierarchy.nodes[i]) for i in dirty)
    total_cost = sum(cost(node) for node in hierarchy.nodes)
    return 2 * dirty_cost < total_cost


def _scoped_node(
    index: HC2LIndex,
    node: TreeNode,
    old_adjacency: WorkingAdjacency,
    new_adjacency: WorkingAdjacency,
    delta: Sequence[Tuple[int, int]],
    new_hierarchy: BalancedTreeHierarchy,
    labelling: HC2LLabelling,
    stats: ConstructionStats,
    parameters: HC2LParameters,
    backend: ShortestPathBackend,
    counters: Dict[str, int],
) -> None:
    """Scoped relabel of one node: splice when untouched, recompute when not.

    Labels at a node are a deterministic function of its working
    subgraph's *content* (induced edges plus inherited shortcuts) and the
    cut vertex set - ranking and tail pruning both derive from the same
    distance searches.  ``delta`` is the exact set of (normalised) edge
    keys on which ``old_adjacency`` and ``new_adjacency`` differ,
    maintained along the recursion; an empty delta means the two working
    graphs are identical, so the old labels of the whole subtree are
    exactly what a full relabel would recompute, and we splice them over
    instead.
    """
    old_hierarchy = index.hierarchy
    if not delta:
        _splice_subtree(index, node, labelling, stats, counters)
        return

    counters["recomputed"] += 1
    # Cut-crossing shortcuts (see _crossing_extension) void the premise of
    # the splice test - the child working graph then also depends on the
    # extension hubs' distances - so the whole subtree falls back to the
    # plain per-node recompute, which handles the extension.  The old side
    # is checked too: an earlier relabel may have left crossing edges that
    # the old-side shortcut reconstruction below would not reproduce.
    if _crossing_extension(new_adjacency, node, old_hierarchy) or _crossing_extension(
        old_adjacency, node, old_hierarchy
    ):
        _relabel_node(
            index, node, new_adjacency, new_hierarchy, labelling, stats, parameters, backend
        )
        return
    with stats.timer.measure("labelling"):
        from repro.core.flat import FlatWorkingGraph

        flat = FlatWorkingGraph(new_adjacency)
        ranking: CutRanking = rank_cut_vertices(
            new_adjacency, node.cut, flat=flat, backend=backend
        )
        arrays, cut_distances = node_distance_arrays(
            new_adjacency, ranking, parameters.tail_pruning, flat=flat, backend=backend
        )
    new_node = new_hierarchy.nodes[node.index]
    new_node.cut = list(ranking.ordered)
    for vertex in ranking.ordered:
        new_hierarchy.vertex_node[vertex] = new_node.index
        new_hierarchy.vertex_depth[vertex] = new_node.depth
        new_hierarchy.vertex_bits[vertex] = new_node.bits
    for vertex in new_adjacency:
        labelling.append_level(vertex, arrays[vertex])
    stats.num_nodes += 1
    if node.is_leaf:
        stats.num_leaves += 1
        return

    old_cut = list(node.cut)
    children = []
    for child_index in (node.left, node.right):
        if child_index is None:
            continue
        child_node = old_hierarchy.nodes[child_index]
        child_vertices = old_hierarchy.subtree_vertices(child_index)
        members = set(child_vertices)
        delta_within = [(u, v) for u, v in delta if u in members and v in members]
        borders_old = _borders_from_cut(old_adjacency, old_cut, members)
        borders_new = _borders_from_cut(new_adjacency, old_cut, members)
        children.append(
            (child_node, child_vertices, delta_within, borders_old, borders_new)
        )

    # Old-side cut distances.  Exact Dijkstra distances are determined by
    # the adjacency floats alone (every relaxation evaluates the same
    # ``dist[u] + w`` candidates, whatever the search order), so plain
    # ``sssp_many`` reproduces the original build's cut distance maps
    # bit-for-bit without the prune bookkeeping of the labelling pass.
    # Only border values are ever consulted (the splice test here and
    # ``dist_c.get(b)`` in Algorithm 3), so the maps cover borders only.
    old_flat = FlatWorkingGraph(old_adjacency)
    old_rows = backend.sssp_many(old_flat, old_flat.dense_ids(old_cut))
    border_union = sorted(
        {b for _, _, _, bo, bn in children for b in bo}
        | {b for _, _, _, bo, bn in children for b in bn}
    )
    border_dense = old_flat.dense_ids(border_union)
    old_cut_distances: Dict[int, Dict[int, float]] = {}
    for cut_vertex, row in zip(old_cut, old_rows):
        entries = {}
        for border, j in zip(border_union, border_dense):
            value = float(row[j])
            if value != INF:
                entries[border] = value
        old_cut_distances[cut_vertex] = entries

    for child_node, child_vertices, delta_within, borders_old, borders_new in children:
        # The child's working graph is a pure function of the restricted
        # region content, the border set and the cut distances *at the
        # borders* (Algorithm 3 consults nothing else).  When all three
        # are unchanged the child's shortcuts - and hence its entire
        # subtree's labels - are unchanged too: splice without running a
        # single old- or new-side shortcut search.
        if (
            not delta_within
            and borders_old == borders_new
            and _border_distances_equal(
                old_cut_distances, cut_distances, old_cut, borders_old
            )
        ):
            _splice_subtree(index, child_node, labelling, stats, counters)
            continue
        old_within = restrict_adjacency(old_adjacency, child_vertices)
        new_within = restrict_adjacency(new_adjacency, child_vertices)
        with stats.timer.measure("shortcuts"):
            shortcuts = compute_shortcuts(
                new_adjacency, ranking.ordered, child_vertices, cut_distances, backend=backend
            )
            apply_shortcuts(new_within, shortcuts)
            old_shortcuts = compute_shortcuts(
                old_adjacency, old_cut, child_vertices, old_cut_distances, backend=backend
            )
            apply_shortcuts(old_within, old_shortcuts)
        stats.num_shortcuts += len(shortcuts)
        # exact child delta: inherited diffs plus any key a shortcut (on
        # either side) could have introduced or modified, value-compared
        candidates = set(delta_within)
        candidates.update(
            (min(s.u, s.v), max(s.u, s.v)) for s in shortcuts
        )
        candidates.update(
            (min(s.u, s.v), max(s.u, s.v)) for s in old_shortcuts
        )
        child_delta = [
            (u, v)
            for u, v in candidates
            if old_within[u].get(v) != new_within[u].get(v)
        ]
        _scoped_node(
            index,
            child_node,
            old_within,
            new_within,
            child_delta,
            new_hierarchy,
            labelling,
            stats,
            parameters,
            backend,
            counters,
        )


def _borders_from_cut(
    adjacency: WorkingAdjacency, cut: Sequence[int], partition: Set[int]
) -> List[int]:
    """Same set as :func:`border_vertices`, scanned from the cut side.

    Borders are partition vertices adjacent to the cut; scanning the cut
    vertices' (symmetric) neighbourhoods touches O(degree(cut)) edges
    instead of every edge of the partition.
    """
    found: Set[int] = set()
    for cut_vertex in cut:
        for neighbour in adjacency[cut_vertex]:
            if neighbour in partition:
                found.add(neighbour)
    return sorted(found)


def _border_distances_equal(
    old_cut_distances: Mapping[int, Mapping[int, float]],
    new_cut_distances: Mapping[int, Mapping[int, float]],
    cut: Sequence[int],
    borders: Sequence[int],
) -> bool:
    """Whether every cut-to-border distance is unchanged (exact float equality)."""
    for cut_vertex in cut:
        old_map = old_cut_distances[cut_vertex]
        new_map = new_cut_distances[cut_vertex]
        for border in borders:
            if old_map.get(border) != new_map.get(border):
                return False
    return True


def _splice_subtree(
    index: HC2LIndex,
    node: TreeNode,
    labelling: HC2LLabelling,
    stats: ConstructionStats,
    counters: Dict[str, int],
) -> None:
    """Copy the old label levels of the subtree rooted at ``node`` verbatim.

    Every vertex of the region owns one level per ancestor depth from
    ``node.depth`` down to its own node; ancestors above ``node`` already
    appended the shallower levels, so appending the old arrays in depth
    order keeps the per-vertex level sequence contiguous.
    """
    old_hierarchy = index.hierarchy
    old_flat = index.flat_labelling()
    stack = [node.index]
    while stack:
        current = old_hierarchy.nodes[stack.pop()]
        counters["spliced"] += 1
        stats.num_nodes += 1
        if current.is_leaf:
            stats.num_leaves += 1
        for child_index in (current.left, current.right):
            if child_index is not None:
                stack.append(child_index)
    labels = labelling.labels
    for vertex in old_hierarchy.subtree_vertices(node.index):
        levels = labels[vertex]
        for depth in range(node.depth, old_flat.num_levels(vertex)):
            # zero-copy: append read-only views into the old flat buffers;
            # FlatLabelling.from_labelling copies them into the new buffers
            levels.append(old_flat.level_view(vertex, depth))


def _crossing_extension(
    adjacency: WorkingAdjacency,
    node: TreeNode,
    hierarchy: BalancedTreeHierarchy,
) -> List[int]:
    """Endpoints of working-graph edges that cross between ``node``'s children.

    The construction can never produce such edges: the balanced cut is
    computed *on* the node's working graph, so no edge - original or
    shortcut - connects the two partitions.  A relabel inherits the cut
    but recomputes the shortcuts under new weights, and a new shortcut
    may connect the two (inherited) child regions directly.  The cut is
    then no longer a separator of the working graph, and both the
    single-depth query (Equation 7) and the via-cut shortcut formula
    (Algorithm 3) would miss paths running over the crossing edge.  Every
    such path passes through the edge's endpoints, so promoting the
    endpoints to additional hubs of the node restores coverage.
    """
    if node.is_leaf or node.left is None or node.right is None:
        return []
    left = set(hierarchy.subtree_vertices(node.left))
    right = set(hierarchy.subtree_vertices(node.right))
    extension: Set[int] = set()
    for u in left:
        for v in adjacency[u]:
            if v in right:
                extension.add(u)
                extension.add(v)
    return sorted(extension)


def _relabel_node(
    index: HC2LIndex,
    node: TreeNode,
    adjacency: WorkingAdjacency,
    new_hierarchy: BalancedTreeHierarchy,
    labelling: HC2LLabelling,
    stats: ConstructionStats,
    parameters: HC2LParameters,
    backend: ShortestPathBackend,
) -> None:
    """Recompute ranking, labels and shortcuts for one node of the old tree."""
    old_hierarchy = index.hierarchy
    extension = _crossing_extension(adjacency, node, old_hierarchy)
    with stats.timer.measure("labelling"):
        from repro.core.flat import FlatWorkingGraph

        flat = FlatWorkingGraph(adjacency)
        ranking: CutRanking = rank_cut_vertices(
            adjacency, node.cut, flat=flat, backend=backend
        )
        # Tail truncation would give the extension entries (appended below)
        # different positions in different vertices' arrays, breaking the
        # min-plus prefix alignment, so it is disabled on affected nodes.
        arrays, cut_distances = node_distance_arrays(
            adjacency,
            ranking,
            parameters.tail_pruning and not extension,
            flat=flat,
            backend=backend,
        )
        if extension:
            vertices = flat.vertices
            for hub, row in zip(extension, backend.sssp_many(flat, flat.dense_ids(extension))):
                values = [float(value) for value in row]
                cut_distances[hub] = {
                    v: d for v, d in zip(vertices, values) if d != INF
                }
                for j, vertex in enumerate(vertices):
                    arrays[vertex].append(values[j])
    new_node = new_hierarchy.nodes[node.index]
    new_node.cut = list(ranking.ordered)
    for vertex in ranking.ordered:
        new_hierarchy.vertex_node[vertex] = new_node.index
        new_hierarchy.vertex_depth[vertex] = new_node.depth
        new_hierarchy.vertex_bits[vertex] = new_node.bits
    for vertex in adjacency:
        labelling.append_level(vertex, arrays[vertex])
    stats.num_nodes += 1
    if node.is_leaf:
        stats.num_leaves += 1
        return

    hubs = list(ranking.ordered) + extension if extension else ranking.ordered
    for child_index in (node.left, node.right):
        if child_index is None:
            continue
        child_node = old_hierarchy.nodes[child_index]
        child_vertices = old_hierarchy.subtree_vertices(child_index)
        with stats.timer.measure("shortcuts"):
            shortcuts = compute_shortcuts(
                adjacency, hubs, child_vertices, cut_distances, backend=backend
            )
            child_adj = child_adjacency(adjacency, child_vertices, shortcuts)
        stats.num_shortcuts += len(shortcuts)
        _relabel_node(
            index, child_node, child_adj, new_hierarchy, labelling, stats, parameters, backend
        )


def _copy_hierarchy_structure(hierarchy: BalancedTreeHierarchy) -> BalancedTreeHierarchy:
    """Clone the tree skeleton (nodes, bits, parent/child links) without labels."""
    clone = BalancedTreeHierarchy(hierarchy.num_vertices)
    clone.vertex_node = list(hierarchy.vertex_node)
    clone.vertex_depth = list(hierarchy.vertex_depth)
    clone.vertex_bits = list(hierarchy.vertex_bits)
    for node in hierarchy.nodes:
        clone.nodes.append(
            TreeNode(
                index=node.index,
                depth=node.depth,
                bits=node.bits,
                cut=list(node.cut),
                parent=node.parent,
                left=node.left,
                right=node.right,
                subtree_size=node.subtree_size,
                is_leaf=node.is_leaf,
            )
        )
    return clone


def _check_same_topology(old: Graph, new: Graph) -> None:
    """Both graphs must have identical vertex and edge sets."""
    if old.num_vertices != new.num_vertices:
        raise ValueError(
            f"relabel requires identical topology; vertex counts differ "
            f"({old.num_vertices} vs {new.num_vertices})"
        )
    if old.num_edges != new.num_edges:
        raise ValueError(
            f"relabel requires identical topology; edge counts differ "
            f"({old.num_edges} vs {new.num_edges})"
        )
    for u, v, _ in old.edges():
        if not new.has_edge(u, v):
            raise ValueError(f"relabel requires identical topology; edge ({u}, {v}) is missing")


def _check_same_contraction(old: ContractedGraph, new: ContractedGraph) -> None:
    """The degree-one contraction is purely topological, so it must not change."""
    if old.core_to_original != new.core_to_original:
        raise ValueError("contraction changed between the old and new graph; rebuild required")


class DynamicHC2LIndex:
    """An HC2L index that supports edge-weight updates without full rebuilds.

    Weight updates are buffered and applied lazily: queries trigger a
    relabelling pass (hierarchy preserved) when pending updates exist.
    This mirrors the strategy sketched in Section 5.4: construction of the
    hierarchy is weight-independent, so only distance values are refreshed.

    The flush path never mutates label storage in place.  ``HC2LIndex``
    keeps its flat buffers as the single source of truth (assigning or
    appending to ``index.labelling`` raises), so the relabelling pass
    builds a fresh labelling and swaps the whole index - every derived
    structure (flat buffers, batch engine, nested view) is invalidated
    together instead of silently desyncing.

    Implements the batch-first :class:`repro.core.oracle.DistanceOracle`
    protocol by flushing and delegating to the underlying index.
    """

    def __init__(self, graph: Graph, parameters: Optional[HC2LParameters] = None, **overrides: object) -> None:
        self._graph = graph.copy()
        self._index = HC2LIndex.build(self._graph, parameters, **overrides)
        self._pending: Dict[Tuple[int, int], float] = {}
        self.relabel_count = 0
        #: guards ``_pending`` (updates may land while a flush is running)
        self._pending_lock = threading.Lock()
        #: serialises relabelling passes; two racing queries flush once
        self._flush_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def index(self) -> HC2LIndex:
        """The current (possibly stale) underlying index."""
        return self._index

    def update_edge_weight(self, u: int, v: int, weight: float) -> None:
        """Schedule a weight change for the existing edge ``(u, v)``."""
        if not self._graph.has_edge(u, v):
            raise KeyError(f"edge ({u}, {v}) does not exist; topology changes require a rebuild")
        weight = float(weight)
        if not math.isfinite(weight) or weight <= 0:
            raise ValueError(f"edge weights must be finite and positive, got {weight}")
        with self._pending_lock:
            self._pending[(min(u, v), max(u, v))] = weight

    def pending_updates(self) -> int:
        """Number of buffered weight changes not yet applied."""
        with self._pending_lock:
            return len(self._pending)

    def flush(self) -> None:
        """Apply all pending weight changes by relabelling over the old hierarchy.

        Concurrent callers serialise on the flush lock, so racing queries
        trigger one relabel, not two.  Updates that land *while* the
        relabel runs are not lost: only the snapshot actually applied is
        cleared from the pending map (and an entry rescheduled with a
        different weight mid-flush survives to the next flush).
        """
        with self._flush_lock:
            with self._pending_lock:
                if not self._pending:
                    return
                applied = dict(self._pending)
            new_graph = self._graph.reweighted(applied)
            new_index = relabel(self._index, new_graph, changed_edges=applied)
            self._graph = new_graph
            self._index = new_index
            self.relabel_count += 1
            with self._pending_lock:
                for key, value in applied.items():
                    if self._pending.get(key) == value:
                        del self._pending[key]

    def distance(self, s: int, t: int) -> float:
        """Exact distance under the most recent weights (flushes lazily)."""
        self.flush()
        return self._index.distance(s, t)

    def distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Batched exact distances under the most recent weights."""
        self.flush()
        return self._index.distances(pairs)

    def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Distances from ``s`` to every target under the most recent weights."""
        self.flush()
        return self._index.one_to_many(s, targets)

    def many_to_many(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        """Distance matrix under the most recent weights."""
        self.flush()
        return self._index.many_to_many(sources, targets)

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus hubs scanned under the most recent weights."""
        self.flush()
        return self._index.distance_with_hub_count(s, t)

    @property
    def construction_seconds(self) -> float:
        """Build time of the most recent (re)labelling pass."""
        return self._index.construction_seconds

    @property
    def supports_batch(self) -> bool:
        """Batch queries are vectorised by the underlying engine."""
        return True

    @property
    def index_size_bytes(self) -> int:
        """Size of the current labelling (protocol metadata)."""
        return self.label_size_bytes()

    def label_size_bytes(self) -> int:
        """Size of the current labelling."""
        return self._index.label_size_bytes()

