"""Algorithm 4 - Dijkstra with pruneability tracking (DistAndPrune).

A standard Dijkstra from a cut vertex, augmented with a boolean flag per
settled vertex recording whether *some* shortest path from the root passes
through a member of a given prune set ``P`` (the lower-ranked cut
vertices).  The priority queue orders ties on distance so that flagged
entries win, which makes the flag mean "there exists a shortest path
through P" rather than "the particular tree path found goes through P" -
exactly the semantics required by the tail-pruning rule (Definition 4.18).

Two implementations of that semantics live here:

* :func:`dist_and_prune` / :func:`dist_and_prune_dense` - the heap-based
  search computing distances and flags in one pass (the classic form), and
* :func:`prune_flags_from_distances` - the flag half alone, derived from an
  *already computed* distance array by one pass over the shortest-path DAG
  in ascending distance order.  This is what lets the CSR backend
  (:mod:`repro.core.backends`) obtain the distances from a heap-free
  vectorised search (one batched ``scipy.sparse.csgraph`` call for all of
  a node's cut vertices) and still produce flags - and therefore labels -
  bit-identical to the heap search.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.core.flat import FlatWorkingGraph, WorkingAdjacency

INF = float("inf")


@dataclass
class PrunedDistances:
    """Result of one DistAndPrune search.

    ``distance`` maps every reached vertex to its shortest-path distance
    from the root; ``through_prune_set`` records, per reached vertex,
    whether a shortest path from the root passes through the prune set.
    Unreached vertices are simply absent (callers treat them as infinity
    and not pruneable).
    """

    root: int
    distance: Dict[int, float]
    through_prune_set: Dict[int, bool]

    def get(self, vertex: int) -> Tuple[float, bool]:
        """``(distance, pruneable)`` for ``vertex`` (``(inf, False)`` if unreached)."""
        return self.distance.get(vertex, INF), self.through_prune_set.get(vertex, False)


def dist_and_prune(
    adjacency: WorkingAdjacency,
    root: int,
    prune_set: Iterable[int],
) -> PrunedDistances:
    """Run Algorithm 4 from ``root`` over a working adjacency.

    Parameters
    ----------
    adjacency:
        Working adjacency of the (distance-preserving) subgraph.
    root:
        The cut vertex the search starts from.
    prune_set:
        Vertices whose presence on a shortest path makes the target
        pruneable (the lower-ranked cut vertices in Algorithm 5).  The
        root itself is ignored if present.

    Returns
    -------
    PrunedDistances
        Distances and pruneability flags for every reachable vertex.
    """
    prune: Set[int] = set(prune_set)
    prune.discard(root)

    distance: Dict[int, float] = {}
    through: Dict[int, bool] = {}
    # Heap entries are (distance, not_pruneable, counter, vertex): among
    # equal distances the flagged (pruneable) entry pops first, so the flag
    # recorded at settle time is True as soon as any tied shortest path
    # passes through the prune set.
    heap: list[Tuple[float, int, int, int]] = [(0.0, 1, 0, root)]
    counter = 1
    while heap:
        dist, not_pruneable, _, vertex = heapq.heappop(heap)
        if vertex in distance:
            continue
        pruneable = not_pruneable == 0
        distance[vertex] = dist
        through[vertex] = pruneable
        for neighbour, weight in adjacency[vertex].items():
            if neighbour in distance:
                continue
            if vertex in prune:
                child_flag = True
            else:
                child_flag = pruneable
            heapq.heappush(
                heap,
                (dist + weight, 0 if child_flag else 1, counter, neighbour),
            )
            counter += 1
    return PrunedDistances(root=root, distance=distance, through_prune_set=through)


def dist_and_prune_dense(
    flat: FlatWorkingGraph,
    root: int,
    prune_ids: Sequence[int],
) -> Tuple[List[float], List[bool]]:
    """Algorithm 4 over a :class:`FlatWorkingGraph` (dense local ids).

    Behaviourally identical to :func:`dist_and_prune` but iterates the CSR
    arrays of a pre-flattened working subgraph, so the ranking and
    labelling passes - which run one search per cut vertex over the *same*
    subgraph - avoid re-hashing original vertex ids on every relaxation.

    Parameters are dense ids (``flat.dense_id`` order); returns full dense
    ``(distance, pruneable)`` arrays with ``inf`` / ``False`` for
    unreached vertices.
    """
    n = len(flat.vertices)
    indptr, indices, weights = flat.indptr, flat.indices, flat.weights
    in_prune = bytearray(n)
    for p in prune_ids:
        in_prune[p] = 1
    in_prune[root] = 0

    dist: List[float] = [INF] * n
    through: List[bool] = [False] * n
    settled = bytearray(n)
    # Same heap entry shape as dist_and_prune: among equal distances the
    # flagged (pruneable) entry pops first, making the settled flag mean
    # "some shortest path passes through the prune set".
    heap: List[Tuple[float, int, int, int]] = [(0.0, 1, 0, root)]
    counter = 1
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, not_pruneable, _, v = pop(heap)
        if settled[v]:
            continue
        settled[v] = 1
        pruneable = not_pruneable == 0
        dist[v] = d
        through[v] = pruneable
        child_not_pruneable = 0 if (in_prune[v] or pruneable) else 1
        for i in range(indptr[v], indptr[v + 1]):
            neighbour = indices[i]
            if settled[neighbour]:
                continue
            push(heap, (d + weights[i], child_not_pruneable, counter, neighbour))
            counter += 1
    return dist, through


def prune_flags_from_distances(
    flat: FlatWorkingGraph,
    root: int,
    prune_ids: Sequence[int],
    dist: Sequence[float],
) -> List[bool]:
    """Recover Algorithm 4's pruneability flags from a finished SSSP.

    ``dist`` must be the exact single-source distance array from ``root``
    over ``flat`` (``inf`` for unreached vertices).  A vertex ``v`` is
    flagged iff some shortest path from the root to ``v`` passes through
    the prune set, i.e. iff it has a shortest-path-DAG parent ``u``
    (``dist[u] + w(u, v) == dist[v]``) that is in the prune set or flagged
    itself.  Unrolling the recursion, ``v`` is flagged iff the DAG
    contains a path of one or more edges from a prune vertex to ``v`` -
    plain reachability, which a worklist propagation seeded at the prune
    set computes touching only the out-edges of prune/flagged vertices.
    With strictly positive edge weights the DAG is acyclic and the root
    can never be flagged, so the fixpoint is order-independent and
    bit-identical to the ``through`` half of
    :func:`dist_and_prune_dense`; unlike the full search it costs nothing
    when the prune set is small or upstream of few vertices (the labelling
    pass's first sources prune almost nothing).

    Zero-weight edges are **rejected**: they tie parent and child
    distances, where the heap search's flags depend on its settle order
    and no distance-derived pass can reproduce them.  Callers (the
    ``csr`` backend) route zero-weight snapshots to the heap search
    instead.
    """
    n = len(flat.vertices)
    indptr, indices, weights = flat.indptr, flat.indices, flat.weights
    # cached on the snapshot (same key the csr backend's delegation check
    # writes), so the O(E) scan runs once per node, not once per cut vertex
    has_zero_weight = flat.cache.get("has_zero_weight")
    if has_zero_weight is None:
        has_zero_weight = bool(weights) and min(weights) == 0.0
        flat.cache["has_zero_weight"] = has_zero_weight
    if has_zero_weight:
        raise ValueError(
            "prune_flags_from_distances requires strictly positive edge "
            "weights (zero-weight ties make the heap search's flags "
            "order-dependent); run dist_and_prune_dense instead"
        )
    dist_list: List[float] = (
        dist if isinstance(dist, list) else np.asarray(dist, dtype=np.float64).tolist()
    )
    through = [False] * n
    stack: List[int] = []
    # Seed: every DAG child of a prune vertex is flagged.  The snapshot
    # stores both directions of each undirected edge, so a vertex's CSR
    # row enumerates its DAG out-edges directly (dist[v] + w == dist[c]).
    for p in prune_ids:
        if p == root:
            continue
        d_p = dist_list[p]
        if d_p == INF:
            continue
        for i in range(indptr[p], indptr[p + 1]):
            c = indices[i]
            if not through[c] and d_p + weights[i] == dist_list[c]:
                through[c] = True
                stack.append(c)
    # Propagate: flagged vertices flag their own DAG children.  Each
    # vertex enters the stack at most once (marked before pushing), so
    # the whole pass is linear in the edges leaving flagged vertices.
    while stack:
        v = stack.pop()
        d_v = dist_list[v]
        for i in range(indptr[v], indptr[v + 1]):
            c = indices[i]
            if not through[c] and d_v + weights[i] == dist_list[c]:
                through[c] = True
                stack.append(c)
    return through
