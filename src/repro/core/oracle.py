"""The batch-first :class:`DistanceOracle` protocol shared by every method.

The paper evaluates HC2L against seven baselines (Dijkstra, bidirectional
Dijkstra, CH, PLL, HL, PHL, H2H).  All of them answer the same question -
"what is the exact shortest-path distance between s and t?" - but before
this module each exposed an ad-hoc scalar ``distance(s, t)`` and the
callers (applications, experiment harness, CLI, serving layer) probed for
optional batch methods with ``hasattr``.  :class:`DistanceOracle` is the
single query surface every method now implements:

``distance(s, t)``
    one exact distance (``inf`` for disconnected pairs).
``distances(pairs)``
    a ``float64`` array aligned with ``pairs``; **bit-identical** to
    calling :meth:`distance` per pair (the conformance suite asserts
    ``==``, not ``approx``).
``one_to_many(s, targets)`` / ``many_to_many(sources, targets)``
    batched single-source rows and full distance matrices.
``distance_with_hub_count(s, t)``
    distance plus the number of label entries inspected (Table 3 metric).
``index_size_bytes`` / ``supports_batch``
    capability metadata: approximate index size and whether the batch
    methods are genuinely vectorised (``True``) or a per-pair loop
    behind the same signature (``False``).

:class:`BatchMixin` supplies correct loop-based batch implementations in
terms of the scalar :meth:`distance`, so a method only overrides the
pieces its structure lets it vectorise (e.g. the Dijkstra oracle groups a
pair batch by source, CH shares the forward search of a one-to-many row,
HC2L's engine vectorises everything).
"""

from __future__ import annotations

from typing import Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

INF = float("inf")

PairLike = Sequence[Tuple[int, int]]


@runtime_checkable
class DistanceOracle(Protocol):
    """Anything that answers exact distance queries, scalar or batched.

    The protocol is ``runtime_checkable`` so the conformance tests can
    assert ``isinstance(oracle, DistanceOracle)``; structural typing keeps
    third-party indexes pluggable without inheriting from anything.
    """

    #: seconds spent building the index (0 for search-based methods)
    construction_seconds: float

    @property
    def supports_batch(self) -> bool:
        """Whether the batch methods are vectorised (not a scalar loop)."""
        ...

    @property
    def index_size_bytes(self) -> int:
        """Approximate size of the query structures in bytes."""
        ...

    def distance(self, s: int, t: int) -> float:
        """Exact distance between ``s`` and ``t`` (``inf`` if disconnected)."""
        ...

    def distances(self, pairs: PairLike) -> np.ndarray:
        """Exact distances for a batch of ``(s, t)`` pairs (``float64``)."""
        ...

    def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Distances from ``s`` to every vertex of ``targets``."""
        ...

    def many_to_many(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        """The ``len(sources) x len(targets)`` distance matrix."""
        ...

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus the number of label entries inspected."""
        ...


# --------------------------------------------------------------------- #
# input normalisation shared by every oracle
# --------------------------------------------------------------------- #
def as_vertex_ids(array: np.ndarray, name: str) -> np.ndarray:
    """Require an integer-typed array; casting floats would silently truncate."""
    if array.size and array.dtype.kind not in "iu":
        raise ValueError(
            f"{name} must contain integer vertex ids, got dtype {array.dtype}"
        )
    return array.astype(np.int64, copy=False)


def as_pair_array(pairs: PairLike) -> np.ndarray:
    """Normalise a pair batch to an ``(n, 2)`` int64 array (may be empty)."""
    pair_array = np.asarray(pairs)
    if pair_array.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if pair_array.ndim != 2 or pair_array.shape[1] != 2:
        raise ValueError(
            f"pairs must be a sequence of (s, t) tuples, got shape {pair_array.shape}"
        )
    return as_vertex_ids(pair_array, "pairs")


def pairs_from_source(s: int, targets) -> np.ndarray:
    """An ``(len(targets), 2)`` pair array fanning one source out to targets.

    The shared building block behind every ``one_to_many`` implementation:
    validates the source and target dtypes once and leaves per-vertex range
    checks to the ``distances`` call evaluating the pairs.
    """
    if not isinstance(s, (int, np.integer)) or isinstance(s, bool):
        # int(2.7) would silently query from vertex 2; the scalar path raises
        raise ValueError(f"s must be an integer vertex id, got {s!r}")
    target_array = as_vertex_ids(np.asarray(targets), "targets")
    pairs = np.empty((len(target_array), 2), dtype=np.int64)
    pairs[:, 0] = int(s)
    pairs[:, 1] = target_array
    return pairs


class BatchMixin:
    """Default batch implementations in terms of the scalar ``distance``.

    The loops perform exactly the float operations of the scalar path, so
    results are bit-identical to a caller-side per-pair loop - which is
    what the protocol conformance suite asserts for every oracle.
    Subclasses override the methods their structure lets them vectorise
    and flip :attr:`supports_batch` when the override is genuinely
    batched.
    """

    @property
    def supports_batch(self) -> bool:
        """Loop-based by default; vectorised oracles override with ``True``."""
        return False

    @property
    def index_size_bytes(self) -> int:
        """Defaults to the method's ``label_size_bytes()`` accounting."""
        return int(self.label_size_bytes())  # type: ignore[attr-defined]

    def distances(self, pairs: PairLike) -> np.ndarray:
        """Exact distances for ``(s, t)`` pairs via the scalar path."""
        pair_array = as_pair_array(pairs)
        out = np.empty(len(pair_array), dtype=np.float64)
        distance = self.distance  # type: ignore[attr-defined]
        for i, (s, t) in enumerate(pair_array.tolist()):
            out[i] = distance(s, t)
        return out

    def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Distances from ``s`` to every vertex of ``targets``."""
        return self.distances(pairs_from_source(s, targets))

    def many_to_many(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        """The ``len(sources) x len(targets)`` distance matrix."""
        source_array = as_vertex_ids(np.asarray(sources), "sources")
        target_array = as_vertex_ids(np.asarray(targets), "targets")
        pairs = np.empty((len(source_array) * len(target_array), 2), dtype=np.int64)
        pairs[:, 0] = np.repeat(source_array, len(target_array))
        pairs[:, 1] = np.tile(target_array, len(source_array))
        return self.distances(pairs).reshape(len(source_array), len(target_array))
