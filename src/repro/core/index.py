"""The public HC2L index facade.

:class:`HC2LIndex` is what applications use: build it once from a road
network, then answer exact shortest-path distance queries in microseconds
(well, in Python: in a few label-array scans).  It combines

* the degree-one contraction (Section 4.2.2),
* the balanced tree hierarchy and tail-pruned labelling over the core
  graph (Sections 4.1-4.2, built by :class:`repro.core.construction.HC2LBuilder`
  or its parallel variant), and
* the O(1)-LCA query procedure (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.construction import ConstructionStats, HC2LBuilder
from repro.core.engine import QueryEngine
from repro.core.flat import FlatLabelling
from repro.core.labelling import HC2LLabelling
from repro.core.query import core_distance_with_stats
from repro.graph.contraction import ContractedGraph, contract_degree_one
from repro.graph.graph import Graph
from repro.hierarchy.tree import BalancedTreeHierarchy
from repro.utils.validation import check_balance_parameter, check_vertex

INF = float("inf")


@dataclass(frozen=True)
class HC2LParameters:
    """Construction parameters for :class:`HC2LIndex`.

    Attributes
    ----------
    beta:
        Balance parameter (Definition 4.1); the paper selects 0.2.
    leaf_size:
        Recursion cut-off - subgraphs of at most this size become leaves.
    tail_pruning:
        Whether to apply tail pruning (Definition 4.18).  Disabling it
        yields the naive upper-bound labelling (ablation of Section 5.1.2).
    contract:
        Whether to run the degree-one contraction before labelling.
    num_workers:
        0 or 1 builds sequentially (HC2L); >= 2 uses the parallel builder
        (HC2L_p, Section 4.4).
    """

    beta: float = 0.2
    leaf_size: int = 12
    tail_pruning: bool = True
    contract: bool = True
    num_workers: int = 0

    def __post_init__(self) -> None:
        check_balance_parameter(self.beta)
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")


def _identity_contraction(graph: Graph) -> ContractedGraph:
    """A no-op contraction mapping every vertex to itself."""
    n = graph.num_vertices
    return ContractedGraph(
        core=graph,
        core_to_original=list(range(n)),
        original_to_core=list(range(n)),
        root=list(range(n)),
        parent=list(range(n)),
        dist_to_parent=[0.0] * n,
        dist_to_root=[0.0] * n,
        depth=[0] * n,
        num_original=n,
    )


@dataclass
class HC2LIndex:
    """A built hierarchical cut 2-hop labelling index."""

    graph: Graph
    parameters: HC2LParameters
    contraction: ContractedGraph
    hierarchy: BalancedTreeHierarchy
    labelling: HC2LLabelling
    stats: ConstructionStats
    construction_seconds: float = 0.0
    _extra: Dict[str, float] = field(default_factory=dict)
    #: lazily created flat storage + batch query engine (see flat_labelling/engine)
    _flat: Optional[FlatLabelling] = field(default=None, repr=False, compare=False)
    _engine: Optional[QueryEngine] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: Graph,
        parameters: Optional[HC2LParameters] = None,
        **overrides: object,
    ) -> "HC2LIndex":
        """Build an index for ``graph``.

        ``parameters`` may be given as an :class:`HC2LParameters` instance
        or through keyword overrides, e.g. ``HC2LIndex.build(g, beta=0.25)``.
        """
        import time

        if parameters is None:
            parameters = HC2LParameters(**overrides)  # type: ignore[arg-type]
        elif overrides:
            raise ValueError("pass either a parameters object or keyword overrides, not both")

        start = time.perf_counter()
        if parameters.contract:
            contraction = contract_degree_one(graph)
        else:
            contraction = _identity_contraction(graph)

        core = contraction.core
        if parameters.num_workers >= 2:
            from repro.core.parallel import ParallelHC2LBuilder

            builder: HC2LBuilder = ParallelHC2LBuilder(
                beta=parameters.beta,
                leaf_size=parameters.leaf_size,
                tail_pruning=parameters.tail_pruning,
                num_workers=parameters.num_workers,
            )
        else:
            builder = HC2LBuilder(
                beta=parameters.beta,
                leaf_size=parameters.leaf_size,
                tail_pruning=parameters.tail_pruning,
            )
        hierarchy, labelling, stats = builder.build(core)
        elapsed = time.perf_counter() - start
        return cls(
            graph=graph,
            parameters=parameters,
            contraction=contraction,
            hierarchy=hierarchy,
            labelling=labelling,
            stats=stats,
            construction_seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    # flat storage / batch engine
    # ------------------------------------------------------------------ #
    def flat_labelling(self) -> FlatLabelling:
        """The labels as one contiguous buffer (cached; lossless conversion)."""
        flat = getattr(self, "_flat", None)
        if flat is None:
            flat = FlatLabelling.from_labelling(self.labelling)
            self._flat = flat
        return flat

    @property
    def engine(self) -> QueryEngine:
        """The batch query engine over the flat label storage (cached)."""
        engine = getattr(self, "_engine", None)
        if engine is None:
            engine = QueryEngine.from_index(self)
            self._engine = engine
        return engine

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance between ``s`` and ``t`` (original ids).

        Returns ``inf`` for disconnected pairs.
        """
        return self.engine.distance(s, t)

    def distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Exact distances for a batch of ``(s, t)`` pairs (vectorised).

        Bit-identical to calling :meth:`distance` per pair, but the
        contraction bookkeeping, LCA computation and min-plus label scans
        run over the whole batch at once.
        """
        return self.engine.distances(pairs)

    def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Distances from ``s`` to every vertex of ``targets`` (batched)."""
        return self.engine.one_to_many(s, targets)

    def many_to_many(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        """The ``len(sources) x len(targets)`` distance matrix (batched)."""
        return self.engine.many_to_many(sources, targets)

    #: Alias so the index can be swapped with the baseline oracles.
    query = distance

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus the number of label entries scanned (Table 3 metric)."""
        n = self.contraction.num_original
        check_vertex(s, n, "s")
        check_vertex(t, n, "t")
        resolved, core_s, core_t, offset = self.contraction.resolve_query(s, t)
        if resolved is not None:
            return resolved, 0
        value, hubs = core_distance_with_stats(self.hierarchy, self.labelling, core_s, core_t)
        return offset + value, hubs

    # ------------------------------------------------------------------ #
    # metrics (feed Tables 2-5)
    # ------------------------------------------------------------------ #
    def label_size_bytes(self) -> int:
        """Size of the distance labelling, including contracted-vertex records."""
        contracted_overhead = self.contraction.num_contracted * 16
        return self.labelling.size_bytes() + contracted_overhead

    def lca_storage_bytes(self) -> int:
        """Size of the auxiliary structure needed for O(1) LCA queries."""
        return self.hierarchy.lca_storage_bytes()

    def tree_height(self) -> int:
        """Height of the balanced tree hierarchy (Table 5)."""
        return self.hierarchy.height()

    def max_cut_size(self) -> int:
        """Largest cut in the hierarchy (Table 5)."""
        return self.hierarchy.max_cut_size()

    def average_cut_size(self) -> float:
        """Average internal cut size (Figure 7)."""
        return self.hierarchy.average_cut_size()

    def average_label_entries(self) -> float:
        """Average number of stored distances per core vertex."""
        return self.labelling.average_label_entries()

    def contraction_ratio(self) -> float:
        """Fraction of vertices removed by the degree-one contraction."""
        return self.contraction.contraction_ratio()

    def describe(self) -> Dict[str, float]:
        """One-stop summary used by the experiment harness and examples."""
        summary: Dict[str, float] = {
            "num_vertices": float(self.graph.num_vertices),
            "num_edges": float(self.graph.num_edges),
            "core_vertices": float(self.contraction.core.num_vertices),
            "contraction_ratio": self.contraction_ratio(),
            "construction_seconds": self.construction_seconds,
            "label_size_bytes": float(self.label_size_bytes()),
            "lca_storage_bytes": float(self.lca_storage_bytes()),
            "tree_height": float(self.tree_height()),
            "max_cut_size": float(self.max_cut_size()),
            "avg_cut_size": self.average_cut_size(),
            "avg_label_entries": self.average_label_entries(),
            "num_shortcuts": float(self.stats.num_shortcuts),
        }
        summary.update(self._extra)
        return summary

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> None:
        """Serialise the index to ``path`` (versioned ``.npz`` format).

        The archive stores the flat label buffers plus typed arrays for the
        graph, contraction and hierarchy; see :mod:`repro.core.persistence`.
        """
        from repro.core.persistence import save_index

        save_index(self, path)

    @classmethod
    def load(cls, path: Union[str, Path], allow_pickle: bool = False) -> "HC2LIndex":
        """Load an index previously written by :meth:`save`.

        Raises ``ValueError`` for files that are not compatible HC2L
        archives.  ``allow_pickle=True`` additionally accepts legacy pickle
        files (pickle can execute arbitrary code - only enable it for
        trusted files).
        """
        from repro.core.persistence import load_index

        return load_index(path, allow_pickle=allow_pickle)
