"""The public HC2L index facade.

:class:`HC2LIndex` is what applications use: build it once from a road
network, then answer exact shortest-path distance queries in microseconds
(well, in Python: in a few label-array scans).  It combines

* the degree-one contraction (Section 4.2.2),
* the balanced tree hierarchy and tail-pruned labelling over the core
  graph (Sections 4.1-4.2, built by :class:`repro.core.construction.HC2LBuilder`
  or its parallel variant), and
* the O(1)-LCA query procedure (Section 4.3).

Label storage
-------------
The **primary** label store is the flat, contiguous
:class:`~repro.core.flat.FlatLabelling` buffer (one ``float64`` array plus
two index arrays) - the layout the batch :class:`~repro.core.engine.QueryEngine`
vectorises over and the payload of the on-disk format.  The nested
list-of-lists :class:`~repro.core.labelling.HC2LLabelling` that the
construction passes produce is converted to flat buffers on creation and
**not retained**; :attr:`HC2LIndex.labelling` materialises a read-oriented
nested view on demand (cached, invalidated by :meth:`replace_labelling`).
A serving deployment that only issues batch queries therefore holds the
labels exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.construction import ConstructionStats, HC2LBuilder
from repro.core.engine import QueryEngine
from repro.core.flat import FlatLabelling
from repro.core.labelling import HC2LLabelling
from repro.core.query import core_distance_with_stats
from repro.graph.contraction import ContractedGraph, contract_degree_one
from repro.graph.graph import Graph
from repro.hierarchy.tree import BalancedTreeHierarchy
from repro.utils.validation import check_balance_parameter, check_vertex

INF = float("inf")


@dataclass(frozen=True)
class HC2LParameters:
    """Construction parameters for :class:`HC2LIndex`.

    Attributes
    ----------
    beta:
        Balance parameter (Definition 4.1); the paper selects 0.2.
    leaf_size:
        Recursion cut-off - subgraphs of at most this size become leaves.
    tail_pruning:
        Whether to apply tail pruning (Definition 4.18).  Disabling it
        yields the naive upper-bound labelling (ablation of Section 5.1.2).
    contract:
        Whether to run the degree-one contraction before labelling.
    num_workers:
        1 builds sequentially (HC2L); >= 2 uses the parallel builder
        (HC2L_p, Section 4.4) with this many workers.  Must be >= 1.
    parallel_mode:
        Execution of the parallel builder when ``num_workers >= 2``:
        ``"thread"`` (shared-memory thread pool, the reference path) or
        ``"process"`` (self-contained subtree work units on a process
        pool; see :mod:`repro.core.parallel`).  Labels are bit-identical
        across modes and worker counts.
    backend:
        Shortest-path backend for the construction searches: ``"heap"``
        (pure-Python binary heap), ``"csr"`` (batched scipy / numpy
        searches over the CSR snapshot), ``"dial"`` (bucket-queue
        searches for integer-scalable weights), or ``"auto"`` (csr when
        scipy is importable).  Labels are bit-identical across backends.
    flow_method:
        Max-flow solver for the hierarchy phase's minimum vertex cuts -
        one of :data:`repro.flow.vertex_cut.FLOW_METHODS`, or ``"auto"``
        to let the backend pick.  Canonical cuts are unique across all
        maximum flows, so labels are bit-identical across methods.
    """

    beta: float = 0.2
    leaf_size: int = 12
    tail_pruning: bool = True
    contract: bool = True
    num_workers: int = 1
    parallel_mode: str = "thread"
    backend: str = "auto"
    flow_method: str = "auto"

    def __post_init__(self) -> None:
        from repro.core.backends import check_backend_name
        from repro.core.construction import check_parallel_mode
        from repro.flow.vertex_cut import check_flow_method

        check_balance_parameter(self.beta)
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        check_parallel_mode(self.parallel_mode)
        check_backend_name(self.backend)
        check_flow_method(self.flow_method)


def _identity_contraction(graph: Graph) -> ContractedGraph:
    """A no-op contraction mapping every vertex to itself."""
    n = graph.num_vertices
    return ContractedGraph(
        core=graph,
        core_to_original=list(range(n)),
        original_to_core=list(range(n)),
        root=list(range(n)),
        parent=list(range(n)),
        dist_to_parent=[0.0] * n,
        dist_to_root=[0.0] * n,
        depth=[0] * n,
        num_original=n,
    )


class _LabellingView(HC2LLabelling):
    """Read-oriented nested view materialised from the flat buffers.

    The view is a snapshot: writing to it cannot reach the flat buffers
    the queries run over, so the mutating entry point raises instead of
    silently desyncing.  Use :meth:`HC2LIndex.replace_labelling` to swap
    in changed labels.
    """

    def append_level(self, vertex: int, array: Sequence[float]) -> None:
        raise RuntimeError(
            "HC2LIndex.labelling is a materialised view of the flat label "
            "buffers; mutating it would silently desync the query engine. "
            "Build a new HC2LLabelling and call index.replace_labelling(...) "
            "instead."
        )


class HC2LIndex:
    """A built hierarchical cut 2-hop labelling index.

    Implements the batch-first :class:`repro.core.oracle.DistanceOracle`
    protocol; every query delegates to the vectorised
    :class:`~repro.core.engine.QueryEngine` over the flat label buffers.
    """

    def __init__(
        self,
        graph: Graph,
        parameters: HC2LParameters,
        contraction: ContractedGraph,
        hierarchy: BalancedTreeHierarchy,
        labelling: Optional[HC2LLabelling] = None,
        stats: Optional[ConstructionStats] = None,
        construction_seconds: float = 0.0,
        flat: Optional[FlatLabelling] = None,
        extra: Optional[Dict[str, float]] = None,
    ) -> None:
        if flat is None:
            if labelling is None:
                raise ValueError("provide the labels as 'labelling' (nested) or 'flat'")
            flat = FlatLabelling.from_labelling(labelling)
        self.graph = graph
        self.parameters = parameters
        self.contraction = contraction
        self.hierarchy = hierarchy
        self.stats = stats if stats is not None else ConstructionStats()
        self.construction_seconds = construction_seconds
        self._extra: Dict[str, float] = dict(extra) if extra else {}
        #: the single authoritative copy of the labels (flat buffers)
        self._flat: FlatLabelling = flat
        self._engine: Optional[QueryEngine] = None
        self._labelling_view: Optional[HC2LLabelling] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: Graph,
        parameters: Optional[HC2LParameters] = None,
        **overrides: object,
    ) -> "HC2LIndex":
        """Build an index for ``graph``.

        ``parameters`` may be given as an :class:`HC2LParameters` instance
        or through keyword overrides, e.g. ``HC2LIndex.build(g, beta=0.25)``.
        """
        import time

        if parameters is None:
            parameters = HC2LParameters(**overrides)  # type: ignore[arg-type]
        elif overrides:
            raise ValueError("pass either a parameters object or keyword overrides, not both")

        start = time.perf_counter()
        if parameters.contract:
            contraction = contract_degree_one(graph)
        else:
            contraction = _identity_contraction(graph)

        core = contraction.core
        if parameters.num_workers >= 2:
            from repro.core.parallel import ParallelHC2LBuilder

            builder: HC2LBuilder = ParallelHC2LBuilder(
                beta=parameters.beta,
                leaf_size=parameters.leaf_size,
                tail_pruning=parameters.tail_pruning,
                num_workers=parameters.num_workers,
                backend=parameters.backend,
                parallel_mode=parameters.parallel_mode,
                flow_method=parameters.flow_method,
            )
        else:
            builder = HC2LBuilder(
                beta=parameters.beta,
                leaf_size=parameters.leaf_size,
                tail_pruning=parameters.tail_pruning,
                backend=parameters.backend,
                flow_method=parameters.flow_method,
            )
        hierarchy, labelling, stats = builder.build(core)
        elapsed = time.perf_counter() - start
        # the process-parallel builder streams the labels directly into
        # flat buffers; hand them over as-is instead of round-tripping
        # through the nested form
        flat = labelling if isinstance(labelling, FlatLabelling) else None
        return cls(
            graph=graph,
            parameters=parameters,
            contraction=contraction,
            hierarchy=hierarchy,
            labelling=None if flat is not None else labelling,
            stats=stats,
            construction_seconds=elapsed,
            flat=flat,
        )

    # ------------------------------------------------------------------ #
    # label storage
    # ------------------------------------------------------------------ #
    def flat_labelling(self) -> FlatLabelling:
        """The authoritative flat label buffers (the only persistent copy)."""
        return self._flat

    @property
    def labelling(self) -> HC2LLabelling:
        """Nested list view of the labels, materialised on demand.

        The view is cached until :meth:`replace_labelling` swaps the
        labels; it is *derived* state - the flat buffers stay the single
        source of truth the query engine reads.  Mutating the view raises
        (see :class:`_LabellingView`).
        """
        view = self._labelling_view
        if view is None:
            nested = self._flat.to_labelling()
            view = _LabellingView(num_vertices=nested.num_vertices, labels=nested.labels)
            self._labelling_view = view
        return view

    @labelling.setter
    def labelling(self, value: object) -> None:
        raise AttributeError(
            "HC2LIndex.labelling cannot be assigned directly; call "
            "index.replace_labelling(new_labelling) so the flat buffers and "
            "query engine are refreshed together."
        )

    def replace_labelling(self, labelling: Union[HC2LLabelling, FlatLabelling]) -> None:
        """Swap in new labels and invalidate every derived query structure.

        This is the supported mutation path for dynamic updates
        (:mod:`repro.core.dynamic`): the flat buffers are rebuilt, and the
        cached batch engine and nested view are dropped so no caller can
        observe stale distances.
        """
        if isinstance(labelling, FlatLabelling):
            flat = labelling
        elif isinstance(labelling, HC2LLabelling):
            flat = FlatLabelling.from_labelling(labelling)
        else:
            raise TypeError(
                f"expected HC2LLabelling or FlatLabelling, got {type(labelling).__name__}"
            )
        expected = self.contraction.core.num_vertices
        if flat.num_vertices != expected:
            raise ValueError(
                f"labelling covers {flat.num_vertices} vertices but the core "
                f"graph has {expected}"
            )
        self._flat = flat
        self._engine = None
        self._labelling_view = None

    @property
    def engine(self) -> QueryEngine:
        """The batch query engine over the flat label storage (cached)."""
        if getattr(self, "_closed", False):
            raise RuntimeError("this HC2LIndex is closed")
        engine = self._engine
        if engine is None:
            engine = QueryEngine.from_index(self)
            self._engine = engine
        return engine

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the label buffers, closing any backing memory maps.

        Matters for mmap-loaded indexes (:func:`repro.serving.mmap.load_index_mmap`):
        worker processes that recycle an index must unmap the ``.npy``
        sidecars deterministically instead of waiting for GC.  The cached
        query engine holds direct references into the buffers, so it is
        dropped first; afterwards every query raises ``RuntimeError``.
        """
        if getattr(self, "_closed", False):
            return
        self._closed = True
        # the engine and nested view alias the flat buffers - drop them
        # before closing so the memmaps have no remaining exporters
        self._engine = None
        self._labelling_view = None
        self._flat.close()

    def __enter__(self) -> "HC2LIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def attach_tree_resolver(self, resolver) -> None:
        """Install a pre-built Euler-tour tree resolver on the engine.

        Used by the mmap load path when a persisted sidecar
        (:func:`repro.core.persistence.save_tree_sidecar`) is present, so
        serving skips the per-process tour rebuild.
        """
        self.engine.resolver.attach_tree_resolver(resolver)

    # ------------------------------------------------------------------ #
    # queries (DistanceOracle protocol)
    # ------------------------------------------------------------------ #
    @property
    def supports_batch(self) -> bool:
        """HC2L's batch path is fully vectorised."""
        return True

    @property
    def index_size_bytes(self) -> int:
        """Label storage plus contracted-vertex records (protocol metadata)."""
        return self.label_size_bytes()

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance between ``s`` and ``t`` (original ids).

        Returns ``inf`` for disconnected pairs.
        """
        return self.engine.distance(s, t)

    def distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Exact distances for a batch of ``(s, t)`` pairs (vectorised).

        Bit-identical to calling :meth:`distance` per pair, but the
        contraction bookkeeping, LCA computation and min-plus label scans
        run over the whole batch at once.
        """
        return self.engine.distances(pairs)

    def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Distances from ``s`` to every vertex of ``targets`` (batched)."""
        return self.engine.one_to_many(s, targets)

    def many_to_many(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        """The ``len(sources) x len(targets)`` distance matrix (batched)."""
        return self.engine.many_to_many(sources, targets)

    #: Alias so the index can be swapped with the baseline oracles.
    query = distance

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus the number of label entries scanned (Table 3 metric)."""
        if getattr(self, "_closed", False):
            raise RuntimeError("this HC2LIndex is closed")
        n = self.contraction.num_original
        check_vertex(s, n, "s")
        check_vertex(t, n, "t")
        resolved, core_s, core_t, offset = self.contraction.resolve_query(s, t)
        if resolved is not None:
            return resolved, 0
        value, hubs = core_distance_with_stats(self.hierarchy, self._flat, core_s, core_t)
        return offset + value, hubs

    # ------------------------------------------------------------------ #
    # metrics (feed Tables 2-5)
    # ------------------------------------------------------------------ #
    def label_size_bytes(self) -> int:
        """Size of the distance labelling, including contracted-vertex records."""
        contracted_overhead = self.contraction.num_contracted * 16
        return self._flat.size_bytes() + contracted_overhead

    def lca_storage_bytes(self) -> int:
        """Size of the auxiliary structure needed for O(1) LCA queries."""
        return self.hierarchy.lca_storage_bytes()

    def tree_height(self) -> int:
        """Height of the balanced tree hierarchy (Table 5)."""
        return self.hierarchy.height()

    def max_cut_size(self) -> int:
        """Largest cut in the hierarchy (Table 5)."""
        return self.hierarchy.max_cut_size()

    def average_cut_size(self) -> float:
        """Average internal cut size (Figure 7)."""
        return self.hierarchy.average_cut_size()

    def average_label_entries(self) -> float:
        """Average number of stored distances per core vertex."""
        return self._flat.average_label_entries()

    def contraction_ratio(self) -> float:
        """Fraction of vertices removed by the degree-one contraction."""
        return self.contraction.contraction_ratio()

    def describe(self) -> Dict[str, float]:
        """One-stop summary used by the experiment harness and examples."""
        summary: Dict[str, float] = {
            "num_vertices": float(self.graph.num_vertices),
            "num_edges": float(self.graph.num_edges),
            "core_vertices": float(self.contraction.core.num_vertices),
            "contraction_ratio": self.contraction_ratio(),
            "construction_seconds": self.construction_seconds,
            "label_size_bytes": float(self.label_size_bytes()),
            "lca_storage_bytes": float(self.lca_storage_bytes()),
            "tree_height": float(self.tree_height()),
            "max_cut_size": float(self.max_cut_size()),
            "avg_cut_size": self.average_cut_size(),
            "avg_label_entries": self.average_label_entries(),
            "num_shortcuts": float(self.stats.num_shortcuts),
        }
        summary.update(self._extra)
        return summary

    def __repr__(self) -> str:
        return (
            f"HC2LIndex(num_vertices={self.graph.num_vertices}, "
            f"label_entries={self._flat.total_entries()})"
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path], tree_sidecar: bool = False) -> None:
        """Serialise the index to ``path`` (versioned ``.npz`` format).

        The archive stores the flat label buffers plus typed arrays for the
        graph, contraction and hierarchy; see :mod:`repro.core.persistence`.
        With ``tree_sidecar=True`` the Euler-tour tree resolver is also
        persisted under ``<path>.tree/`` so mmap loads skip the
        per-process rebuild (see
        :func:`repro.core.persistence.save_tree_sidecar`).
        """
        from repro.core.persistence import save_index, save_tree_sidecar

        save_index(self, path)
        if tree_sidecar:
            save_tree_sidecar(self, path)

    def save_sharded(
        self,
        path: Union[str, Path],
        num_shards: int = 2,
        boundaries: Union[str, Sequence[int], None] = None,
        generation: Optional[int] = None,
    ) -> Path:
        """Write the index as a sharded layout under ``<path>.shards/``.

        The label buffers are partitioned by core vertex range into
        self-contained shard archives next to a label-free ``base.npz``;
        serve the layout with :class:`repro.serving.ShardRouter` (or
        ``repro query --shards``).  ``generation`` versions the layout for
        hot-swap serving (``None`` bumps any existing manifest's counter).
        Returns the layout directory; see
        :func:`repro.core.persistence.save_index_sharded`.
        """
        from repro.core.persistence import save_index_sharded

        return save_index_sharded(
            self, path, num_shards=num_shards, boundaries=boundaries, generation=generation
        )

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        allow_pickle: bool = False,
        mmap_labels: bool = False,
    ) -> "HC2LIndex":
        """Load an index previously written by :meth:`save`.

        Raises ``ValueError`` for files that are not compatible HC2L
        archives.  ``allow_pickle=True`` additionally accepts legacy pickle
        files (pickle can execute arbitrary code - only enable it for
        trusted files).  ``mmap_labels=True`` maps the flat label buffers
        from disk instead of reading them into memory, so multiple serving
        processes loading the same index share one physical copy via the
        page cache (see :mod:`repro.serving`).
        """
        from repro.core.persistence import load_index

        return load_index(path, allow_pickle=allow_pickle, mmap_labels=mmap_labels)
