"""Parallel HC2L construction (HC2L_p, Section 4.4).

The paper parallelises the recursion: the two sides of every balanced cut
are processed concurrently.  This module offers two executions of that
idea, selected by ``parallel_mode``:

``thread``
    The reference parallel path.  Child recursions large enough are
    submitted to a :class:`concurrent.futures.ThreadPoolExecutor`; the
    shared hierarchy / labelling / statistics are lock-guarded.  Threads
    share memory, so nothing is copied - but under CPython's GIL the
    pure-Python searches do not overlap, so the measured speed-up is
    modest (the reference implementation is C++ where threads run truly
    concurrently).  ``benchmarks/test_parallel_construction.py`` reports
    whatever is achieved and EXPERIMENTS.md discusses the gap.

``process``
    Independent hierarchy subtrees are shipped to a
    :class:`concurrent.futures.ProcessPoolExecutor` as self-contained
    work units: the induced CSR arrays travel as numpy buffers (cheap to
    pickle, no ``Graph`` objects cross the boundary), each worker runs
    the dict-free recursion of :mod:`repro.core.flat_build`, and the
    coordinator streams the returned label fragments into one flat
    :class:`~repro.core.flat.FlatLabelling` in hierarchy DFS order.
    Processes sidestep the GIL, at the price of pickling each unit in
    and its label block out - below the size crossover (small graphs,
    ``num_vertices <= parallel_threshold``) the builder simply falls
    back to the serial path.  The top of the hierarchy is expanded
    inline (snapshot reuse: child snapshots are derived from the parent
    CSR plus the shortcut overlay, never rebuilt from dicts), and peak
    memory is bounded by the frontier of in-flight units rather than the
    whole nested labelling.

Both modes produce labels bit-identical to the sequential
:class:`~repro.core.construction.HC2LBuilder` for every worker count;
``tests/test_process_parallel.py`` pins the full mode x backend x workers
matrix and ``tests/test_differential_fuzz.py`` covers graph families.
"""

from __future__ import annotations

import sys
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.backends import BackendSpec
from repro.core.construction import ConstructionStats, HC2LBuilder, check_parallel_mode
from repro.core.flat import FlatLabelling, FlatWorkingGraph
from repro.core.flat_build import (
    SubtreeResult,
    build_subtree,
    build_subtree_payload,
    fragment_from_levels,
    node_step,
)
from repro.core.labelling import HC2LLabelling, node_distance_arrays
from repro.core.ranking import rank_cut_vertices
from repro.graph.graph import Graph
from repro.hierarchy.tree import BalancedTreeHierarchy
from repro.partition.cut import balanced_cut
from repro.partition.shortcuts import child_adjacency, compute_shortcuts
from repro.partition.working_graph import WorkingAdjacency, working_graph_from


class ParallelHC2LBuilder(HC2LBuilder):
    """HC2L builder that fans the recursion out over a worker pool.

    Parameters mirror :class:`HC2LBuilder`; ``num_workers`` sets the pool
    size, ``parallel_threshold`` the minimum subgraph size for which work
    is handed to the pool rather than processed inline, and
    ``parallel_mode`` selects threads (shared memory, GIL-bound) or
    processes (self-contained subtree units, see the module docstring).
    """

    def __init__(
        self,
        beta: float = 0.2,
        leaf_size: int = 12,
        tail_pruning: bool = True,
        max_depth: int = 60,
        num_workers: int = 4,
        parallel_threshold: int = 64,
        backend: BackendSpec = "auto",
        parallel_mode: str = "thread",
        flow_method: str = "auto",
    ) -> None:
        super().__init__(
            beta=beta,
            leaf_size=leaf_size,
            tail_pruning=tail_pruning,
            max_depth=max_depth,
            backend=backend,
            flow_method=flow_method,
        )
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.parallel_threshold = parallel_threshold
        self.parallel_mode = check_parallel_mode(parallel_mode)
        self._lock = threading.Lock()
        self._futures: List[Future] = []
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ #
    def build(self, graph: Graph):
        """Build hierarchy + labelling using ``num_workers`` workers.

        Thread mode returns the nested :class:`HC2LLabelling` like the
        sequential builder; process mode returns the labels directly as a
        :class:`~repro.core.flat.FlatLabelling` (the fragments are
        streamed into the flat layout, the nested form never exists) -
        except on small graphs (``num_vertices <= parallel_threshold``),
        where it falls back to the serial nested build.
        """
        if self.parallel_mode == "process":
            return self._build_process(graph)
        return self._build_threaded(graph)

    # ------------------------------------------------------------------ #
    # thread mode (the reference parallel path)
    # ------------------------------------------------------------------ #
    def _build_threaded(self, graph: Graph):
        stats = ConstructionStats()
        hierarchy = BalancedTreeHierarchy(graph.num_vertices)
        labelling = HC2LLabelling(graph.num_vertices)
        if graph.num_vertices == 0:
            return hierarchy, labelling, stats
        adjacency = working_graph_from(graph)
        self._futures = []
        with ThreadPoolExecutor(max_workers=self.num_workers) as executor:
            self._executor = executor
            self._build_node(
                adjacency,
                depth=0,
                bits=0,
                parent=None,
                side=None,
                hierarchy=hierarchy,
                labelling=labelling,
                stats=stats,
            )
            # Drain nested tasks: new futures may be appended while we wait.
            while True:
                with self._lock:
                    pending = [f for f in self._futures if not f.done()]
                if not pending:
                    break
                wait(pending)
            for future in self._futures:
                future.result()  # surface exceptions from worker threads
        self._executor = None
        return hierarchy, labelling, stats

    @contextmanager
    def _timed(self, stats: ConstructionStats, name: str) -> Iterator[None]:
        """Thread-safe :meth:`Timer.measure`: the read-modify-write of the
        shared durations dict happens under the builder lock."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                stats.timer.durations[name] = stats.timer.get(name) + elapsed

    def _build_node(
        self,
        adjacency: WorkingAdjacency,
        depth: int,
        bits: int,
        parent: Optional[int],
        side: Optional[str],
        hierarchy: BalancedTreeHierarchy,
        labelling: HC2LLabelling,
        stats: ConstructionStats,
    ) -> Optional[int]:
        vertices = sorted(adjacency)
        n = len(vertices)
        if n == 0:
            return None
        node_started = time.perf_counter()
        with self._lock:
            stats.max_depth = max(stats.max_depth, depth)

        force_leaf = n <= self.leaf_size or depth >= self.max_depth
        cut_result = None
        flat: Optional[FlatWorkingGraph] = None
        if not force_leaf:
            with self._timed(stats, "snapshot"):
                flat = FlatWorkingGraph(adjacency)
            cut_started = time.perf_counter()
            with self._timed(stats, "hierarchy"):
                cut_result = balanced_cut(
                    beta=self.beta,
                    flat=flat,
                    backend=self.backend,
                    flow_method=self.flow_method,
                )
            seconds_cut = time.perf_counter() - cut_started
            if not cut_result.part_a or not cut_result.part_b:
                force_leaf = True

        if force_leaf:
            with self._timed(stats, "labelling"):
                flat = FlatWorkingGraph(adjacency)
                ranking = rank_cut_vertices(adjacency, vertices, flat=flat, backend=self.backend)
                arrays, _ = node_distance_arrays(
                    adjacency, ranking, self.tail_pruning, flat=flat, backend=self.backend
                )
            with self._lock:
                node = hierarchy.add_node(depth, bits, ranking.ordered, parent, side, is_leaf=True)
                hierarchy.set_subtree_size(node.index, n)
                stats.num_nodes += 1
                stats.num_leaves += 1
                stats.node_timings.append((depth, n, time.perf_counter() - node_started, 0.0))
            for v in vertices:
                labelling.append_level(v, arrays[v])
            return node.index

        assert cut_result is not None and flat is not None
        with self._timed(stats, "labelling"):
            ranking = rank_cut_vertices(adjacency, cut_result.cut, flat=flat, backend=self.backend)
            arrays, cut_distances = node_distance_arrays(
                adjacency, ranking, self.tail_pruning, flat=flat, backend=self.backend
            )
        with self._lock:
            node = hierarchy.add_node(depth, bits, ranking.ordered, parent, side, is_leaf=False)
            hierarchy.set_subtree_size(node.index, n)
            stats.num_nodes += 1
            if not ranking.ordered:
                stats.num_empty_cuts += 1
        for v in vertices:
            labelling.append_level(v, arrays[v])

        children = (
            (cut_result.part_a, "left", 0),
            (cut_result.part_b, "right", 1),
        )
        # derive both child graphs before submitting/recursing so the
        # per-node timing covers exactly this node's own work
        pending = []
        for child_vertices, child_side, child_bit in children:
            if not child_vertices:
                continue
            with self._timed(stats, "shortcuts"):
                shortcuts = compute_shortcuts(
                    adjacency, ranking.ordered, child_vertices, cut_distances, backend=self.backend
                )
                child = child_adjacency(adjacency, child_vertices, shortcuts)
            with self._lock:
                stats.num_shortcuts += len(shortcuts)
            pending.append((child, child_side, child_bit, len(child_vertices)))
        with self._lock:
            stats.node_timings.append((depth, n, time.perf_counter() - node_started, seconds_cut))
        for child, child_side, child_bit, child_n in pending:
            args = (
                child,
                depth + 1,
                (bits << 1) | child_bit,
                node.index,
                child_side,
                hierarchy,
                labelling,
                stats,
            )
            if self._executor is not None and child_n >= self.parallel_threshold:
                future = self._executor.submit(self._build_node, *args)
                with self._lock:
                    self._futures.append(future)
                    stats.num_tasks += 1
            else:
                self._build_node(*args)
        return node.index

    # ------------------------------------------------------------------ #
    # process mode (self-contained subtree units)
    # ------------------------------------------------------------------ #
    def _build_process(self, graph: Graph):
        stats = ConstructionStats()
        hierarchy = BalancedTreeHierarchy(graph.num_vertices)
        if graph.num_vertices == 0:
            return hierarchy, HC2LLabelling(0), stats
        n_total = graph.num_vertices
        if n_total <= self.parallel_threshold:
            # below the pickling crossover a pool costs more than it saves
            return HC2LBuilder.build(self, graph)

        adjacency = working_graph_from(graph)
        with stats.timer.measure("snapshot"):
            root = FlatWorkingGraph(adjacency)
        del adjacency
        # subtrees at most this large become work units; the cap keeps at
        # least ~4 units per worker in flight for load balance while the
        # floor stops units too small to amortise their pickling
        ship_max = max(self.parallel_threshold, -(-n_total // (4 * self.num_workers)))

        #: vertex -> label levels of already-processed ancestor nodes, for
        #: vertices whose own cut level has not been reached yet.  Entries
        #: are popped the moment a vertex enters a fragment, so this holds
        #: only the frontier of in-flight subtrees, never the whole graph.
        prefix: Dict[int, List[List[float]]] = {}
        #: preorder construction events ("node" for inline nodes, "unit"
        #: for shipped subtrees); replayed in order during assembly so
        #: hierarchy node indices match the sequential build exactly
        events: List[Tuple] = []
        #: per-fragment (vertex ids, FlatLabelling) pairs; unit slots are
        #: reserved at submission and filled when the result is merged
        fragments: List[Optional[Tuple[np.ndarray, FlatLabelling]]] = []

        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, 10_000))
        try:
            with ProcessPoolExecutor(max_workers=self.num_workers) as executor:
                self._expand(
                    root, 0, 0, -1, None, stats, prefix, fragments, events, executor, ship_max
                )
                if prefix:
                    raise AssertionError(
                        f"{len(prefix)} vertices never reached a label fragment"
                    )
                # replay the events in preorder: inline nodes go straight
                # into the hierarchy, unit results are awaited and grafted
                event_to_hier: Dict[int, int] = {}
                for event_index, event in enumerate(events):
                    if event[0] == "node":
                        _, depth, bits, cut, parent_event, side, is_leaf, n = event
                        parent_idx = event_to_hier[parent_event] if parent_event >= 0 else None
                        node = hierarchy.add_node(depth, bits, cut, parent_idx, side, is_leaf=is_leaf)
                        hierarchy.set_subtree_size(node.index, n)
                        event_to_hier[event_index] = node.index
                    else:
                        _, slot, handle, prefix_frag, unit_vertices, parent_event, side = event
                        result: SubtreeResult = (
                            handle.result() if isinstance(handle, Future) else handle
                        )
                        self._merge_subtree(
                            result, parent_event, side, event_to_hier, hierarchy, stats
                        )
                        # the worker's fragment is in subtree-DFS order;
                        # align the inherited ancestor prefix to it, then
                        # concatenate levels per vertex (prefix first)
                        order = np.searchsorted(unit_vertices, result.dfs_vertices)
                        fragments[slot] = (
                            result.dfs_vertices,
                            prefix_frag.reorder(order).merge_levels(result.fragment()),
                        )
        finally:
            sys.setrecursionlimit(limit)

        with stats.timer.measure("flatten"):
            order_concat = (
                np.concatenate([fragment[0] for fragment in fragments])
                if fragments
                else np.empty(0, dtype=np.int64)
            )
            if not np.array_equal(
                np.sort(order_concat), np.arange(n_total, dtype=np.int64)
            ):
                raise AssertionError(
                    "label fragments do not cover every vertex exactly once"
                )
            flat_all = FlatLabelling.concat([fragment[1] for fragment in fragments])
            perm = np.empty(n_total, dtype=np.int64)
            perm[order_concat] = np.arange(n_total, dtype=np.int64)
            labelling = flat_all.reorder(perm)
        return hierarchy, labelling, stats

    def _expand(
        self,
        flat: FlatWorkingGraph,
        depth: int,
        bits: int,
        parent_event: int,
        side: Optional[str],
        stats: ConstructionStats,
        prefix: Dict[int, List[List[float]]],
        fragments: List[Optional[Tuple[np.ndarray, FlatLabelling]]],
        events: List[Tuple],
        executor: ProcessPoolExecutor,
        ship_max: int,
    ) -> None:
        """Expand the top of the hierarchy inline, spawning subtree units.

        Nodes larger than ``ship_max`` are processed here (cut + ranking +
        labelling + child snapshots via the shortcut overlay); anything at
        or below it becomes a work unit.  Runs single-threaded in the
        coordinating process, so statistics need no locking.
        """
        n = len(flat.vertices)
        if n == 0:
            return
        if n <= ship_max:
            self._spawn_unit(
                flat, depth, bits, parent_event, side, stats, prefix, fragments, events, executor
            )
            return
        node_started = time.perf_counter()
        stats.max_depth = max(stats.max_depth, depth)
        step = node_step(
            flat,
            depth,
            beta=self.beta,
            leaf_size=self.leaf_size,
            tail_pruning=self.tail_pruning,
            max_depth=self.max_depth,
            backend=self.backend,
            timer=stats.timer,
            flow_method=self.flow_method,
        )
        event_index = len(events)
        ordered = step.ranking.ordered
        stats.num_nodes += 1
        if step.is_leaf:
            stats.num_leaves += 1
        elif not ordered:
            stats.num_empty_cuts += 1
        # vertices assigned to this node's cut have their full label now:
        # the inherited ancestor levels plus this node's array.  Stream
        # them out as a finished fragment immediately.
        if ordered:
            fragments.append(
                (
                    np.asarray(ordered, dtype=np.int64),
                    fragment_from_levels(
                        [prefix.pop(v, []) + [step.arrays[v]] for v in ordered]
                    ),
                )
            )
        events.append(("node", depth, bits, ordered, parent_event, side, step.is_leaf, n))
        if step.is_leaf:
            stats.node_timings.append(
                (depth, n, time.perf_counter() - node_started, step.seconds_cut)
            )
            return
        cut_set = set(ordered)
        for v in flat.vertices:
            if v not in cut_set:
                prefix.setdefault(v, []).append(step.arrays[v])
        stats.num_shortcuts += sum(child[3] for child in step.children)
        stats.node_timings.append(
            (depth, n, time.perf_counter() - node_started, step.seconds_cut)
        )
        for child_flat, child_side, child_bit, _ in step.children:
            self._expand(
                child_flat,
                depth + 1,
                (bits << 1) | child_bit,
                event_index,
                child_side,
                stats,
                prefix,
                fragments,
                events,
                executor,
                ship_max,
            )

    def _spawn_unit(
        self,
        flat: FlatWorkingGraph,
        depth: int,
        bits: int,
        parent_event: int,
        side: Optional[str],
        stats: ConstructionStats,
        prefix: Dict[int, List[List[float]]],
        fragments: List[Optional[Tuple[np.ndarray, FlatLabelling]]],
        events: List[Tuple],
        executor: ProcessPoolExecutor,
    ) -> None:
        """Turn one subtree into a work unit (pool task or inline call)."""
        n = len(flat.vertices)
        slot = len(fragments)
        fragments.append(None)
        unit_vertices = np.asarray(flat.vertices, dtype=np.int64)
        prefix_frag = fragment_from_levels([prefix.pop(v, []) for v in flat.vertices])
        if n >= self.parallel_threshold:
            indptr, indices, weights = flat.csr_arrays()
            payload = {
                "vertices": unit_vertices,
                "indptr": indptr,
                "indices": indices,
                "weights": weights,
                "depth": depth,
                "bits": bits,
                "beta": self.beta,
                "leaf_size": self.leaf_size,
                "tail_pruning": self.tail_pruning,
                "max_depth": self.max_depth,
                # ship by name: instances don't cross process boundaries
                "backend": self.backend.name,
                "flow_method": self.flow_method,
            }
            handle = executor.submit(build_subtree_payload, payload)
            stats.num_tasks += 1
        else:
            # too small to amortise pickling; same dict-free recursion,
            # run inline with the exact backend instance
            handle = build_subtree(
                flat,
                depth,
                bits,
                beta=self.beta,
                leaf_size=self.leaf_size,
                tail_pruning=self.tail_pruning,
                max_depth=self.max_depth,
                backend=self.backend,
                flow_method=self.flow_method,
            )
        events.append(("unit", slot, handle, prefix_frag, unit_vertices, parent_event, side))

    def _merge_subtree(
        self,
        result: SubtreeResult,
        parent_event: int,
        side: Optional[str],
        event_to_hier: Dict[int, int],
        hierarchy: BalancedTreeHierarchy,
        stats: ConstructionStats,
    ) -> None:
        """Graft a unit's node records and statistics into the globals."""
        local_to_global: List[int] = []
        for i in range(len(result.depths)):
            parent_local = result.parents[i]
            if parent_local < 0:
                parent_idx = event_to_hier[parent_event] if parent_event >= 0 else None
                side_i = side
            else:
                parent_idx = local_to_global[parent_local]
                side_i = result.sides[i]
            node = hierarchy.add_node(
                result.depths[i],
                result.bits[i],
                result.cuts[i],
                parent_idx,
                side_i,
                is_leaf=result.leaf_flags[i],
            )
            hierarchy.set_subtree_size(node.index, result.sizes[i])
            local_to_global.append(node.index)
        stats.num_nodes += len(result.depths)
        stats.num_leaves += result.num_leaves
        stats.num_empty_cuts += result.num_empty_cuts
        stats.num_shortcuts += result.num_shortcuts
        stats.max_depth = max(stats.max_depth, result.max_depth)
        stats.node_timings.extend(result.node_timings)
        for name, seconds in result.durations.items():
            stats.timer.durations[name] = stats.timer.get(name) + seconds
