"""Parallel HC2L construction (HC2L_p, Section 4.4).

The paper parallelises two things: (a) the two sides of every balanced cut
are processed by separate threads, and (b) within a node, the per-cut /
per-border Dijkstra searches run in parallel.  This module mirrors (a)
with a :class:`concurrent.futures.ThreadPoolExecutor`: whenever a child
subgraph is large enough, its recursion is submitted as a task instead of
being processed inline.

A note on expectations: the reference implementation is C++ where threads
run truly concurrently.  Under CPython's GIL the pure-Python searches do
not overlap, so the measured speed-up is modest; the benchmark in
``benchmarks/test_parallel_construction.py`` reports whatever is achieved
and EXPERIMENTS.md discusses the gap.  The code path, the work splitting
and the determinism of the result are the same as in the paper.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor, wait
from typing import List, Optional

from repro.core.backends import BackendSpec
from repro.core.construction import ConstructionStats, HC2LBuilder
from repro.core.flat import FlatWorkingGraph
from repro.core.labelling import HC2LLabelling, node_distance_arrays
from repro.core.ranking import rank_cut_vertices
from repro.graph.graph import Graph
from repro.hierarchy.tree import BalancedTreeHierarchy
from repro.partition.cut import balanced_cut
from repro.partition.shortcuts import child_adjacency, compute_shortcuts
from repro.partition.working_graph import WorkingAdjacency, working_graph_from


class ParallelHC2LBuilder(HC2LBuilder):
    """HC2L builder that fans the recursion out over a thread pool.

    Parameters mirror :class:`HC2LBuilder`; ``num_workers`` sets the thread
    pool size and ``parallel_threshold`` the minimum subgraph size for
    which a child is handed to the pool rather than processed inline.
    """

    def __init__(
        self,
        beta: float = 0.2,
        leaf_size: int = 12,
        tail_pruning: bool = True,
        max_depth: int = 60,
        num_workers: int = 4,
        parallel_threshold: int = 64,
        backend: BackendSpec = "auto",
    ) -> None:
        super().__init__(
            beta=beta,
            leaf_size=leaf_size,
            tail_pruning=tail_pruning,
            max_depth=max_depth,
            backend=backend,
        )
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.parallel_threshold = parallel_threshold
        self._lock = threading.Lock()
        self._futures: List[Future] = []
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ #
    def build(self, graph: Graph):
        """Build hierarchy + labelling using ``num_workers`` threads."""
        stats = ConstructionStats()
        hierarchy = BalancedTreeHierarchy(graph.num_vertices)
        labelling = HC2LLabelling(graph.num_vertices)
        if graph.num_vertices == 0:
            return hierarchy, labelling, stats
        adjacency = working_graph_from(graph)
        self._futures = []
        with ThreadPoolExecutor(max_workers=self.num_workers) as executor:
            self._executor = executor
            self._build_node(
                adjacency,
                depth=0,
                bits=0,
                parent=None,
                side=None,
                hierarchy=hierarchy,
                labelling=labelling,
                stats=stats,
            )
            # Drain nested tasks: new futures may be appended while we wait.
            while True:
                with self._lock:
                    pending = [f for f in self._futures if not f.done()]
                if not pending:
                    break
                wait(pending)
            for future in self._futures:
                future.result()  # surface exceptions from worker threads
        self._executor = None
        return hierarchy, labelling, stats

    # ------------------------------------------------------------------ #
    def _build_node(
        self,
        adjacency: WorkingAdjacency,
        depth: int,
        bits: int,
        parent: Optional[int],
        side: Optional[str],
        hierarchy: BalancedTreeHierarchy,
        labelling: HC2LLabelling,
        stats: ConstructionStats,
    ) -> Optional[int]:
        vertices = sorted(adjacency)
        n = len(vertices)
        if n == 0:
            return None
        with self._lock:
            stats.max_depth = max(stats.max_depth, depth)

        force_leaf = n <= self.leaf_size or depth >= self.max_depth
        cut_result = None
        flat: Optional[FlatWorkingGraph] = None
        if not force_leaf:
            with stats.timer.measure("snapshot"):
                flat = FlatWorkingGraph(adjacency)
            with stats.timer.measure("hierarchy"):
                cut_result = balanced_cut(beta=self.beta, flat=flat, backend=self.backend)
            if not cut_result.part_a or not cut_result.part_b:
                force_leaf = True

        if force_leaf:
            flat = FlatWorkingGraph(adjacency)
            ranking = rank_cut_vertices(adjacency, vertices, flat=flat, backend=self.backend)
            arrays, _ = node_distance_arrays(
                adjacency, ranking, self.tail_pruning, flat=flat, backend=self.backend
            )
            with self._lock:
                node = hierarchy.add_node(depth, bits, ranking.ordered, parent, side, is_leaf=True)
                hierarchy.set_subtree_size(node.index, n)
                stats.num_nodes += 1
                stats.num_leaves += 1
            for v in vertices:
                labelling.append_level(v, arrays[v])
            return node.index

        assert cut_result is not None and flat is not None
        ranking = rank_cut_vertices(adjacency, cut_result.cut, flat=flat, backend=self.backend)
        arrays, cut_distances = node_distance_arrays(
            adjacency, ranking, self.tail_pruning, flat=flat, backend=self.backend
        )
        with self._lock:
            node = hierarchy.add_node(depth, bits, ranking.ordered, parent, side, is_leaf=False)
            hierarchy.set_subtree_size(node.index, n)
            stats.num_nodes += 1
            if not ranking.ordered:
                stats.num_empty_cuts += 1
        for v in vertices:
            labelling.append_level(v, arrays[v])

        children = (
            (cut_result.part_a, "left", 0),
            (cut_result.part_b, "right", 1),
        )
        for child_vertices, child_side, child_bit in children:
            if not child_vertices:
                continue
            shortcuts = compute_shortcuts(
                adjacency, ranking.ordered, child_vertices, cut_distances, backend=self.backend
            )
            child = child_adjacency(adjacency, child_vertices, shortcuts)
            with self._lock:
                stats.num_shortcuts += len(shortcuts)
            args = (
                child,
                depth + 1,
                (bits << 1) | child_bit,
                node.index,
                child_side,
                hierarchy,
                labelling,
                stats,
            )
            if self._executor is not None and len(child_vertices) >= self.parallel_threshold:
                future = self._executor.submit(self._build_node, *args)
                with self._lock:
                    self._futures.append(future)
            else:
                self._build_node(*args)
        return node.index
