"""HC2L query evaluation (Section 4.3, Equation 7).

A distance query ``(s, t)`` finds the depth of the lowest common ancestor
of the two vertices' tree nodes - an O(1) bitstring operation - and then
performs a min-plus scan over the two distance arrays stored for that
depth.  Tail pruning may have truncated the arrays to different lengths;
only the shared prefix participates (Example 4.20).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.labelling import HC2LLabelling
from repro.hierarchy.tree import BalancedTreeHierarchy

INF = float("inf")


def min_plus_prefix(array_s: Sequence[float], array_t: Sequence[float]) -> Tuple[float, int]:
    """Minimum of ``array_s[i] + array_t[i]`` over the shared prefix.

    Returns ``(value, positions_scanned)``; the value is ``inf`` when the
    shared prefix is empty (the two vertices are separated by an empty cut,
    i.e. disconnected).
    """
    length = min(len(array_s), len(array_t))
    best = INF
    for i in range(length):
        candidate = array_s[i] + array_t[i]
        if candidate < best:
            best = candidate
    return best, length


def core_distance(
    hierarchy: BalancedTreeHierarchy,
    labelling: HC2LLabelling,
    s: int,
    t: int,
) -> float:
    """Exact distance between two *core* vertices using Equation 7.

    Works against either label backend (nested :class:`HC2LLabelling` or
    :class:`repro.core.flat.FlatLabelling`); the batch-capable fast path
    lives in :class:`repro.core.engine.QueryEngine`.
    """
    if s == t:
        return 0.0
    depth = hierarchy.lca_depth(s, t)
    value, _ = min_plus_prefix(
        labelling.level_array(s, depth), labelling.level_array(t, depth)
    )
    return value


def core_distance_with_stats(
    hierarchy: BalancedTreeHierarchy,
    labelling: HC2LLabelling,
    s: int,
    t: int,
) -> Tuple[float, int]:
    """Like :func:`core_distance` but also reports the number of hubs scanned.

    The hub count feeds the "Average Hub Size" column of Table 3.
    """
    if s == t:
        return 0.0, 0
    depth = hierarchy.lca_depth(s, t)
    return min_plus_prefix(
        labelling.level_array(s, depth), labelling.level_array(t, depth)
    )


def hub_vertices_for_query(
    hierarchy: BalancedTreeHierarchy,
    s: int,
    t: int,
) -> List[int]:
    """The cut vertices considered by a query (debug / test helper)."""
    if s == t:
        return []
    depth = hierarchy.lca_depth(s, t)
    node = hierarchy.node_of(s)
    while node.depth > depth:
        assert node.parent is not None
        node = hierarchy.nodes[node.parent]
    return list(node.cut)
