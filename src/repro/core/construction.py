"""Sequential HC2L construction.

:class:`HC2LBuilder` interleaves the construction of the balanced tree
hierarchy (Section 4.1) with the tail-pruned labelling (Section 4.2): for
each tree node it

1. computes a balanced cut of the current working subgraph (Algorithms 1
   and 2),
2. ranks the cut vertices (Equation 6) and runs the pruneability-tracking
   Dijkstra searches that yield both the distance arrays of the labelling
   and the cut-to-border distances,
3. derives the distance-preserving shortcuts for each side (Algorithm 3),
   and
4. recurses on the two shortcut-enhanced child subgraphs.

Interleaving avoids re-running the per-cut-vertex searches, which is also
how the reference implementation described in the paper organises the work
(the labelling searches "account for the majority" of construction time).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.backends import BackendSpec, ShortestPathBackend, resolve_backend
from repro.flow.vertex_cut import check_flow_method
from repro.core.flat import FlatWorkingGraph
from repro.core.labelling import HC2LLabelling, node_distance_arrays
from repro.core.ranking import CutRanking, rank_cut_vertices
from repro.graph.graph import Graph
from repro.hierarchy.tree import BalancedTreeHierarchy
from repro.partition.cut import BalancedCutResult, balanced_cut
from repro.partition.shortcuts import child_adjacency, compute_shortcuts
from repro.partition.working_graph import WorkingAdjacency, working_graph_from
from repro.utils.timer import Timer
from repro.utils.validation import check_balance_parameter


#: execution modes of the parallel builder: ``thread`` fans the recursion
#: out over a thread pool (the reference parallel path), ``process`` ships
#: self-contained subtree work units to a process pool.
PARALLEL_MODES = ("thread", "process")


def check_parallel_mode(name: str) -> str:
    """Validate a parallel-mode name, loudly."""
    if name not in PARALLEL_MODES:
        raise ValueError(
            f"unknown parallel_mode {name!r}; expected one of {list(PARALLEL_MODES)}"
        )
    return name


@dataclass
class ConstructionStats:
    """Counters and timings collected while building an HC2L index."""

    timer: Timer = field(default_factory=Timer)
    num_nodes: int = 0
    num_leaves: int = 0
    num_shortcuts: int = 0
    num_empty_cuts: int = 0
    max_depth: int = 0
    #: work units handed to a worker pool (0 for sequential builds and for
    #: process-mode builds that fell back to the serial path)
    num_tasks: int = 0
    #: per-node ``(depth, num_vertices, seconds, seconds_cut)`` records,
    #: where seconds covers the node's own cut + ranking + labelling +
    #: child-derivation work (recursion excluded) and seconds_cut is the
    #: balanced-cut share of it (0.0 for leaves, which compute no cut);
    #: feeds the bench's construction-skew view and its cut-vs-label split
    node_timings: List[Tuple[int, int, float, float]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dict for reporting."""
        result: Dict[str, float] = {
            "num_nodes": float(self.num_nodes),
            "num_leaves": float(self.num_leaves),
            "num_shortcuts": float(self.num_shortcuts),
            "num_empty_cuts": float(self.num_empty_cuts),
            "max_depth": float(self.max_depth),
            "num_tasks": float(self.num_tasks),
            "total_seconds": self.timer.total(),
        }
        for name, seconds in self.timer.durations.items():
            result[f"seconds_{name}"] = seconds
        return result


class HC2LBuilder:
    """Builds the balanced tree hierarchy and HC2L labelling of a graph.

    Parameters
    ----------
    beta:
        Balance parameter of Definition 4.1 (the paper uses 0.2).
    leaf_size:
        Subgraphs with at most this many vertices become leaf nodes whose
        "cut" is the whole subgraph.
    tail_pruning:
        Disable to build the naive (upper-bound) labelling of
        Section 4.2.1; used by the ablation benchmark.
    max_depth:
        Hard recursion limit; deeper subgraphs become leaves.  Mostly a
        safety net for adversarial inputs.
    backend:
        The :class:`~repro.core.backends.ShortestPathBackend` running the
        construction searches (``"auto"``, ``"heap"``, ``"csr"``,
        ``"dial"``, or an instance); ``"auto"`` picks the CSR backend
        when scipy is available.  Labels are bit-identical across
        backends.
    flow_method:
        Max-flow solver for the balanced cuts - a name from
        :data:`repro.flow.vertex_cut.FLOW_METHODS`, or ``"auto"`` to use
        the backend's default.  Cuts (and therefore labels) are
        bit-identical across methods.
    """

    def __init__(
        self,
        beta: float = 0.2,
        leaf_size: int = 12,
        tail_pruning: bool = True,
        max_depth: int = 60,
        backend: BackendSpec = "auto",
        flow_method: str = "auto",
    ) -> None:
        self.beta = check_balance_parameter(beta)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be at least 1, got {leaf_size}")
        self.leaf_size = leaf_size
        self.tail_pruning = tail_pruning
        self.max_depth = max_depth
        self.backend: ShortestPathBackend = resolve_backend(backend)
        self.flow_method = check_flow_method(flow_method)

    # ------------------------------------------------------------------ #
    def build(self, graph: Graph) -> Tuple[BalancedTreeHierarchy, HC2LLabelling, ConstructionStats]:
        """Build hierarchy + labelling for ``graph`` (over all its vertices)."""
        stats = ConstructionStats()
        hierarchy = BalancedTreeHierarchy(graph.num_vertices)
        labelling = HC2LLabelling(graph.num_vertices)
        if graph.num_vertices == 0:
            return hierarchy, labelling, stats
        adjacency = working_graph_from(graph)
        # the recursion is bounded by max_depth but pathological partition
        # recursions inside Algorithm 1 can still nest; raise the limit for
        # the duration of the build and restore it afterwards
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, 10_000))
        try:
            self._build_node(
                adjacency,
                depth=0,
                bits=0,
                parent=None,
                side=None,
                hierarchy=hierarchy,
                labelling=labelling,
                stats=stats,
            )
        finally:
            sys.setrecursionlimit(limit)
        return hierarchy, labelling, stats

    # ------------------------------------------------------------------ #
    def _build_node(
        self,
        adjacency: WorkingAdjacency,
        depth: int,
        bits: int,
        parent: Optional[int],
        side: Optional[str],
        hierarchy: BalancedTreeHierarchy,
        labelling: HC2LLabelling,
        stats: ConstructionStats,
    ) -> Optional[int]:
        vertices = sorted(adjacency)
        n = len(vertices)
        if n == 0:
            return None
        node_started = time.perf_counter()
        stats.max_depth = max(stats.max_depth, depth)

        cut_result: Optional[BalancedCutResult] = None
        force_leaf = n <= self.leaf_size or depth >= self.max_depth
        flat: Optional[FlatWorkingGraph] = None
        if not force_leaf:
            # one CSR snapshot per node, shared by the hierarchy phase
            # (seed searches, component scans) and the labelling passes
            # (which also share the csr backend's distance-row cache)
            with stats.timer.measure("snapshot"):
                flat = FlatWorkingGraph(adjacency)
            cut_started = time.perf_counter()
            with stats.timer.measure("hierarchy"):
                cut_result = balanced_cut(
                    beta=self.beta,
                    flat=flat,
                    backend=self.backend,
                    flow_method=self.flow_method,
                )
            seconds_cut = time.perf_counter() - cut_started
            if not cut_result.part_a or not cut_result.part_b:
                force_leaf = True

        if force_leaf:
            return self._build_leaf(
                adjacency, vertices, depth, bits, parent, side, hierarchy, labelling, stats
            )

        assert cut_result is not None and flat is not None
        with stats.timer.measure("labelling"):
            ranking = rank_cut_vertices(
                adjacency, cut_result.cut, flat=flat, backend=self.backend
            )
            arrays, cut_distances = node_distance_arrays(
                adjacency, ranking, self.tail_pruning, flat=flat, backend=self.backend
            )
        node = hierarchy.add_node(depth, bits, ranking.ordered, parent, side, is_leaf=False)
        hierarchy.set_subtree_size(node.index, n)
        stats.num_nodes += 1
        if not ranking.ordered:
            stats.num_empty_cuts += 1
        for v in vertices:
            labelling.append_level(v, arrays[v])

        children = (
            (cut_result.part_a, "left", 0),
            (cut_result.part_b, "right", 1),
        )
        # derive both child graphs before recursing so the per-node timing
        # below covers exactly this node's own work (no recursion inside)
        pending = []
        for child_vertices, child_side, child_bit in children:
            if not child_vertices:
                continue
            with stats.timer.measure("shortcuts"):
                shortcuts = compute_shortcuts(
                    adjacency,
                    ranking.ordered,
                    child_vertices,
                    cut_distances,
                    backend=self.backend,
                )
                child = child_adjacency(adjacency, child_vertices, shortcuts)
            stats.num_shortcuts += len(shortcuts)
            pending.append((child, child_side, child_bit))
        stats.node_timings.append((depth, n, time.perf_counter() - node_started, seconds_cut))
        for child, child_side, child_bit in pending:
            self._build_node(
                child,
                depth + 1,
                (bits << 1) | child_bit,
                node.index,
                child_side,
                hierarchy,
                labelling,
                stats,
            )
        return node.index

    # ------------------------------------------------------------------ #
    def _build_leaf(
        self,
        adjacency: WorkingAdjacency,
        vertices: list,
        depth: int,
        bits: int,
        parent: Optional[int],
        side: Optional[str],
        hierarchy: BalancedTreeHierarchy,
        labelling: HC2LLabelling,
        stats: ConstructionStats,
    ) -> int:
        """Terminate the recursion: every remaining vertex joins the node's cut."""
        node_started = time.perf_counter()
        with stats.timer.measure("labelling"):
            flat = FlatWorkingGraph(adjacency)
            ranking: CutRanking = rank_cut_vertices(
                adjacency, vertices, flat=flat, backend=self.backend
            )
            arrays, _ = node_distance_arrays(
                adjacency, ranking, self.tail_pruning, flat=flat, backend=self.backend
            )
        node = hierarchy.add_node(depth, bits, ranking.ordered, parent, side, is_leaf=True)
        hierarchy.set_subtree_size(node.index, len(vertices))
        stats.num_nodes += 1
        stats.num_leaves += 1
        for v in vertices:
            labelling.append_level(v, arrays[v])
        stats.node_timings.append((depth, len(vertices), time.perf_counter() - node_started, 0.0))
        return node.index
