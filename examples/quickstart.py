#!/usr/bin/env python3
"""Quickstart: build an HC2L index and answer distance queries.

Builds the paper's hierarchical cut 2-hop labelling on a small synthetic
road network, cross-checks a few answers against plain Dijkstra, and
prints the index statistics the paper reports (label size, LCA storage,
tree height, maximum cut size).

Run with::

    python examples/quickstart.py [num_vertices]
"""

from __future__ import annotations

import random
import sys
import time

from repro import HC2LIndex, RoadNetworkSpec, synthetic_road_network
from repro.graph.search import dijkstra


def main(num_vertices: int = 800, num_queries: int = 20_000) -> None:
    print(f"Generating a synthetic road network with ~{num_vertices} vertices ...")
    network = synthetic_road_network(
        RoadNetworkSpec("quickstart", num_vertices=num_vertices, seed=2024)
    )
    graph = network.distance_graph
    print(f"  {graph.num_vertices} vertices, {graph.num_edges} edges")

    print("Building the HC2L index (balanced tree hierarchy + tail-pruned labels) ...")
    start = time.perf_counter()
    index = HC2LIndex.build(graph, beta=0.2)
    print(f"  built in {time.perf_counter() - start:.2f}s")

    stats = index.describe()
    print("Index statistics:")
    print(f"  label size          : {stats['label_size_bytes'] / 1024:.1f} KB")
    print(f"  LCA storage         : {stats['lca_storage_bytes'] / 1024:.1f} KB")
    print(f"  tree height         : {int(stats['tree_height'])}")
    print(f"  max cut size        : {int(stats['max_cut_size'])}")
    print(f"  avg label entries   : {stats['avg_label_entries']:.1f}")
    print(f"  degree-1 contraction: {stats['contraction_ratio']:.1%} of vertices removed")

    print("Answering queries (validated against Dijkstra):")
    rng = random.Random(7)
    for _ in range(5):
        s, t = rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices)
        exact = dijkstra(graph, s)[t]
        fast = index.distance(s, t)
        print(f"  d({s:4d}, {t:4d}) = {fast:12.1f}   (Dijkstra agrees: {abs(fast - exact) < 1e-6 * max(1, exact)})")

    pairs = [(rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices)) for _ in range(num_queries)]
    index.distances(pairs[:1])  # build the lazy flat-label engine before timing
    start = time.perf_counter()
    for s, t in pairs:
        index.distance(s, t)
    per_query = (time.perf_counter() - start) / len(pairs) * 1e6
    print(f"Single-pair throughput: {per_query:.2f} us/query over {len(pairs):,} random queries")

    # The batch API evaluates the whole workload in one vectorised call
    # over the flat label storage - same answers, far higher throughput.
    start = time.perf_counter()
    batch = index.distances(pairs)
    batch_per_query = (time.perf_counter() - start) / len(pairs) * 1e6
    print(f"Batch throughput     : {batch_per_query:.2f} us/query "
          f"({per_query / max(batch_per_query, 1e-9):.1f}x the single-pair path)")
    spot = [index.distance(s, t) for s, t in pairs[:100]]
    assert spot == list(batch[:100]), "batch results must be bit-identical"

    # one-to-many: all distances from one source in a single call
    origin = pairs[0][0]
    nearest = index.one_to_many(origin, list(range(min(10, graph.num_vertices))))
    print(f"one_to_many from {origin}: {[round(d, 1) for d in nearest.tolist()]}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)  # pragma: no cover
