#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

This is the heavyweight example: it runs the full experiment harness
(Tables 1-5, Figures 6-7) on the synthetic stand-in datasets and writes
the rendered text to stdout and to ``results/``.

Runtime is controlled by the same environment variables the benchmark
suite uses:

* ``REPRO_BENCH_DATASETS`` - comma-separated dataset subset
  (default NY,BAY,COL,FLA,CAL),
* ``REPRO_BENCH_SCALE`` - dataset size multiplier (default 1).

Run with::

    python examples/reproduce_tables.py [--quick]

``--quick`` restricts the run to the two smallest datasets and fewer
queries so it finishes in well under a minute.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import report
from repro.experiments.datasets import bench_dataset_names
from repro.experiments.evaluation import run_evaluation
from repro.experiments.figures import figure6, figure7
from repro.experiments.tables import TABLE2_METHODS, table1, table2, table3, table4, table5

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def main(quick: bool = False) -> None:
    datasets = bench_dataset_names()
    num_queries = 2000
    if quick:
        datasets = datasets[:2]
        num_queries = 400
    print(f"Datasets: {', '.join(datasets)} ({num_queries} random queries each)\n")

    sections: dict[str, str] = {}

    sections["table1"] = report.render_table(table1(datasets), title="Table 1 - dataset summary")

    print("Running the distance-weighted evaluation (Tables 2, 3, 5, Figure 6) ...")
    distance_eval = run_evaluation(
        datasets=datasets, methods=TABLE2_METHODS, weighting="distance",
        num_queries=num_queries, keep_indexes=False,
    )
    sections["table2"] = report.render_table(
        table2(evaluation=distance_eval), title="Table 2 - distance weights"
    )
    sections["table3"] = report.render_table(
        table3(datasets=datasets, num_queries=num_queries), title="Table 3 - LCA storage / average hub size"
    )
    sections["table5"] = report.render_table(
        table5(evaluation=distance_eval), title="Table 5 - tree height and max cut size"
    )

    print("Running the travel-time evaluation (Table 4) ...")
    travel_eval = run_evaluation(
        datasets=datasets, methods=TABLE2_METHODS, weighting="travel_time",
        num_queries=num_queries, keep_indexes=False,
    )
    sections["table4"] = report.render_table(
        table4(evaluation=travel_eval), title="Table 4 - travel-time weights"
    )

    print("Running Figure 6 (distance-stratified query sets) ...")
    sections["figure6"] = report.render_figure6(
        figure6(datasets=datasets, pairs_per_set=50 if quick else 100)
    )
    print("Running Figure 7 (balance threshold sweep) ...")
    sections["figure7"] = report.render_figure7(
        figure7(datasets=datasets[: min(3, len(datasets))], num_queries=num_queries // 2)
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    for name, text in sections.items():
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    print(f"All sections also written to {RESULTS_DIR}/")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
