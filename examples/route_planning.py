#!/usr/bin/env python3
"""Delivery route planning with dynamic travel-time updates.

Another application from the paper's introduction: optimising delivery
routes with multiple stops, where travel times change during the day
(congestion, road closures).  This example

1. builds an HC2L index wrapped in the dynamic-update layer
   (Section 5.4 of the paper: the hierarchy is weight-independent, so a
   weight change only requires relabelling),
2. plans a multi-stop delivery tour with the 2-opt route planner,
3. simulates congestion on a handful of roads, refreshes the labels, and
4. re-plans the tour under the new travel times.

Run with::

    python examples/route_planning.py
"""

from __future__ import annotations

import random
import time

from repro import RoadNetworkSpec, synthetic_road_network
from repro.applications import RoutePlanner
from repro.core.dynamic import DynamicHC2LIndex


def main() -> None:
    network = synthetic_road_network(RoadNetworkSpec("delivery", num_vertices=700, seed=3))
    graph = network.travel_time_graph
    print(f"Road network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    print("Building a dynamic HC2L index ...")
    start = time.perf_counter()
    dynamic = DynamicHC2LIndex(graph)
    print(f"  initial build: {time.perf_counter() - start:.2f}s")

    rng = random.Random(11)
    depot = rng.randrange(graph.num_vertices)
    stops = rng.sample(range(graph.num_vertices), 8)
    planner = RoutePlanner(dynamic)

    route, length = planner.route(depot, stops)
    print(f"Planned tour from depot {depot} through {len(stops)} stops:")
    print(f"  order : {' -> '.join(map(str, route))}")
    print(f"  length: {length:.1f} (travel time units)")

    print("Simulating rush hour: tripling travel times on 5% of roads ...")
    edges = list(graph.edges())
    congested = rng.sample(edges, max(1, len(edges) // 20))
    for u, v, w in congested:
        dynamic.update_edge_weight(u, v, w * 3.0)
    start = time.perf_counter()
    dynamic.flush()  # relabel over the existing hierarchy (no re-partitioning)
    print(f"  labels refreshed in {time.perf_counter() - start:.2f}s "
          f"(hierarchy reused, {dynamic.relabel_count} relabel pass)")

    new_route, new_length = planner.route(depot, stops)
    print("Re-planned tour under congestion:")
    print(f"  order : {' -> '.join(map(str, new_route))}")
    print(f"  length: {new_length:.1f} (was {length:.1f} before congestion)")
    if new_route != route:
        print("  the tour order changed to avoid congested roads")


if __name__ == "__main__":
    main()
