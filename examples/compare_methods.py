#!/usr/bin/env python3
"""Compare HC2L against every baseline on one dataset (a miniature Table 2).

Builds HC2L, H2H, PHL, HL, PLL and bidirectional Dijkstra on the same
synthetic road network and prints query time, index size, construction
time and average hub count per method - the comparison at the heart of the
paper's evaluation.

Run with::

    python examples/compare_methods.py [dataset]

where ``dataset`` is one of the paper's dataset names (NY, BAY, COL, ...);
the synthetic stand-in of that dataset is used.
"""

from __future__ import annotations

import sys

from repro.experiments.datasets import load_dataset
from repro.experiments.harness import run_cell
from repro.experiments.methods import METHOD_BUILDERS
from repro.experiments.report import render_table
from repro.experiments.workloads import random_pairs

METHODS = ["HC2L", "HC2L_p", "H2H", "PHL", "HL", "PLL", "BiDijkstra"]


def main(dataset: str = "NY", num_pairs: int = 2000, methods: list[str] | None = None) -> None:
    network = load_dataset(dataset)
    graph = network.distance_graph
    print(f"Dataset {dataset} (synthetic stand-in): "
          f"{graph.num_vertices} vertices, {graph.num_edges} edges")
    pairs = random_pairs(graph, num_pairs, seed=5)

    rows = []
    for method_name in methods or METHODS:
        spec = METHOD_BUILDERS[method_name]
        print(f"  building {method_name} ...")
        cell = run_cell(spec, graph, pairs, dataset_name=dataset)
        row = {
            "method": cell.method,
            "query_us": round(cell.query_microseconds, 3),
            "label_size_bytes": cell.label_size_bytes,
            "construction_s": round(cell.construction_seconds, 3),
            "avg_hubs": round(cell.average_hubs, 1),
        }
        # methods exposing the batch API also report batched throughput
        if "batch_query_microseconds" in cell.extra:
            row["batch_us"] = round(cell.extra["batch_query_microseconds"], 3)
        rows.append(row)

    print()
    print(render_table(rows, title=f"Method comparison on {dataset} (distance weights)"))
    fastest = min(rows, key=lambda r: r["query_us"])
    print(f"Fastest query method: {fastest['method']} at {fastest['query_us']} us/query")
    batched = [r for r in rows if "batch_us" in r]
    if batched:
        best = min(batched, key=lambda r: r["batch_us"])
        print(f"Fastest batch method: {best['method']} at {best['batch_us']} us/query (batched)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "NY")
