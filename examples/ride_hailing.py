#!/usr/bin/env python3
"""Ride hailing: match cars to customers with millions of distance queries.

The paper's introduction motivates HC2L with exactly this workload: a ride
hailing platform repeatedly needs the road distances between every waiting
customer and every available car ("the locations of 1k cars and 10k
customers"), so per-query latency directly bounds matching throughput.

This example

1. builds an HC2L index on a synthetic city,
2. samples car and customer locations,
3. computes the full car x customer distance matrix,
4. assigns each customer the nearest free car, and
5. compares the distance-matrix throughput of HC2L against bidirectional
   Dijkstra to show why an index is needed at all.

Run with::

    python examples/ride_hailing.py
"""

from __future__ import annotations

import random
import time

from repro import HC2LIndex, RoadNetworkSpec, synthetic_road_network
from repro.applications import KNearestNeighbours, distance_matrix, nearest_assignment
from repro.baselines.dijkstra import BidirectionalDijkstra


def main() -> None:
    network = synthetic_road_network(RoadNetworkSpec("city", num_vertices=1200, seed=99))
    graph = network.travel_time_graph  # dispatching cares about time, not metres
    print(f"City road network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    print("Building HC2L index ...")
    index = HC2LIndex.build(graph)
    print(f"  done in {index.construction_seconds:.2f}s")

    rng = random.Random(1)
    cars = rng.sample(range(graph.num_vertices), 40)
    customers = rng.sample(range(graph.num_vertices), 120)

    print(f"Computing the {len(cars)} x {len(customers)} car/customer distance matrix ...")
    start = time.perf_counter()
    matrix = distance_matrix(index, cars, customers)
    hc2l_seconds = time.perf_counter() - start
    print(f"  HC2L: {hc2l_seconds * 1000:.1f} ms "
          f"({hc2l_seconds / matrix.size * 1e6:.2f} us per distance)")

    subset_cars, subset_customers = cars[:10], customers[:10]
    baseline = BidirectionalDijkstra.build(graph)
    start = time.perf_counter()
    distance_matrix(baseline, subset_cars, subset_customers)
    baseline_seconds = (time.perf_counter() - start) * (matrix.size / 100)
    print(f"  bidirectional Dijkstra (extrapolated): {baseline_seconds * 1000:.0f} ms")

    print("Assigning each customer the nearest free car ...")
    assignments = nearest_assignment(index, cars, customers[: len(cars)])
    total_pickup = sum(d for _, _, d in assignments)
    print(f"  {len(assignments)} assignments, mean pickup travel time "
          f"{total_pickup / max(len(assignments), 1):.1f}")

    print("k-nearest-car queries for three customers:")
    knn = KNearestNeighbours(index, cars)
    for customer in customers[:3]:
        nearest = knn.query(customer, k=3)
        formatted = ", ".join(f"car@{car} ({dist:.0f})" for car, dist in nearest)
        print(f"  customer@{customer}: {formatted}")


if __name__ == "__main__":
    main()
